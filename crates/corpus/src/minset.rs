//! Weighted corpus minimization: greedy weighted set cover over
//! re-executed edge sets.

use std::cmp::Ordering;
use std::collections::{BinaryHeap, HashMap, HashSet};
use std::sync::Arc;

use snowplow_kernel::{EdgeSet, ExecResult, Kernel, Vm};

use crate::entry::{edge_keys, CorpusEntry};

/// Edges of `entry` not yet in `covered`, counted without mutating
/// either set (a masked popcount over the dense edge rows).
pub fn count_new_edges(entry: &EdgeSet, covered: &EdgeSet) -> usize {
    let cov_rows = covered.rows();
    entry
        .rows()
        .iter()
        .enumerate()
        .map(|(src, row)| {
            let cov = cov_rows.get(src);
            row.iter()
                .enumerate()
                .map(|(wi, &w)| {
                    let c = cov.and_then(|r| r.get(wi)).copied().unwrap_or(0);
                    (w & !c).count_ones() as usize
                })
                .sum::<usize>()
        })
        .sum()
}

/// A candidate in the lazy-greedy heap. `gain` is an upper bound on the
/// entry's uncovered-edge count (exact when freshly computed, stale-high
/// otherwise — monotonically shrinking coverage makes true gains only
/// fall, which is what makes lazy re-evaluation sound).
struct Cand {
    gain: usize,
    weight: u64,
    idx: usize,
}

impl Cand {
    /// Better = higher `gain / weight` ratio (compared exactly by u128
    /// cross-multiplication), ties broken toward the smaller index so
    /// the cover is deterministic.
    fn cmp_ratio(&self, other: &Cand) -> Ordering {
        let a = self.gain as u128 * other.weight as u128;
        let b = other.gain as u128 * self.weight as u128;
        a.cmp(&b).then_with(|| other.idx.cmp(&self.idx))
    }
}

impl PartialEq for Cand {
    fn eq(&self, other: &Self) -> bool {
        self.cmp_ratio(other) == Ordering::Equal
    }
}
impl Eq for Cand {}
impl PartialOrd for Cand {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Cand {
    fn cmp(&self, other: &Self) -> Ordering {
        self.cmp_ratio(other)
    }
}

/// Greedy weighted minset (afl-cmin with a cost model).
///
/// Re-executes every entry from a pristine snapshot — sharded over
/// `workers` through the order-preserving pool, so the edge sets (and
/// therefore the cover) are identical at any worker count — then runs a
/// sequential lazy-greedy weighted set cover:
///
/// 1. pinned entries are seeded into the kept set first (in admission
///    order): a crash witness is never traded away for a cheaper
///    coverer;
/// 2. remaining entries are taken by highest `uncovered_edges / weight`
///    ratio, weight = [`CorpusEntry::minset_weight`]
///    (`exec_time_ns * prog_len`), until the kept set covers the union
///    edge set exactly;
/// 3. the cover is pruned irredundant — any unpinned kept entry whose
///    edges are all covered elsewhere in the kept set is dropped,
///    heaviest first — and then guarded against the pin-seeded
///    first-fit baseline: ratio greedy minimizes *weight*, which can
///    occasionally buy coverage with more (cheaper) entries than the
///    historical first-fit scan would keep, so if the weighted cover is
///    still larger the baseline wins. The result is therefore never
///    larger than legacy minimization at equal coverage.
///
/// Returns `(kept indices ascending, per-entry re-execution results)`;
/// the caller rebuilds admission-order contribution counts from the
/// latter.
pub fn weighted_minset(
    kernel: &Kernel,
    workers: usize,
    entries: &[Arc<CorpusEntry>],
    pinned: &[bool],
) -> (Vec<usize>, Vec<ExecResult>) {
    let execs = snowplow_pool::scoped_map(
        workers,
        (0..entries.len()).collect(),
        || {
            let vm = Vm::new(kernel);
            let snap = vm.snapshot();
            (vm, snap)
        },
        |(vm, snap), _, i| {
            vm.restore(snap);
            vm.execute(&entries[i].prog)
        },
    );
    let sets: Vec<EdgeSet> = execs.iter().map(|x| x.edges()).collect();
    let mut union = EdgeSet::new();
    for s in &sets {
        union.merge(s);
    }

    let mut covered = EdgeSet::new();
    let mut kept = Vec::new();
    for (i, &pin) in pinned.iter().enumerate() {
        if pin {
            kept.push(i);
            covered.merge(&sets[i]);
        }
    }

    let mut heap: BinaryHeap<Cand> = (0..entries.len())
        .filter(|i| !pinned.get(*i).copied().unwrap_or(false))
        .map(|i| Cand {
            gain: sets[i].len(),
            weight: entries[i].minset_weight(),
            idx: i,
        })
        .collect();

    while covered.len() < union.len() {
        let Some(top) = heap.pop() else { break };
        if top.gain == 0 {
            break;
        }
        let fresh = count_new_edges(&sets[top.idx], &covered);
        if fresh == 0 {
            continue;
        }
        let refreshed = Cand { gain: fresh, ..top };
        // Lazy re-evaluation: cached gains are upper bounds, so if the
        // refreshed top still beats the next cached candidate it beats
        // every true ratio in the heap.
        if fresh == top.gain
            || heap
                .peek()
                .is_none_or(|next| refreshed.cmp_ratio(next).is_ge())
        {
            kept.push(refreshed.idx);
            covered.merge(&sets[refreshed.idx]);
        } else {
            heap.push(refreshed);
        }
    }
    debug_assert_eq!(covered.len(), union.len(), "minset must cover the union");

    prune_redundant(entries, &sets, pinned, &mut kept);

    // Cardinality guard: the pin-seeded first-fit scan (the historical
    // minimizer with pins forced in) is the ceiling the weighted cover
    // must not exceed.
    let mut ff_covered = EdgeSet::new();
    let mut first_fit = Vec::new();
    for (i, &pin) in pinned.iter().enumerate() {
        if pin {
            first_fit.push(i);
            ff_covered.merge(&sets[i]);
        }
    }
    for (i, set) in sets.iter().enumerate() {
        if !pinned.get(i).copied().unwrap_or(false) && ff_covered.merge(set) > 0 {
            first_fit.push(i);
        }
    }
    if kept.len() > first_fit.len() {
        kept = first_fit;
    }

    kept.sort_unstable();
    (kept, execs)
}

/// Drops every unpinned kept entry whose edges are all covered at least
/// twice within the kept set, scanning heaviest (then latest) first so
/// the most expensive redundancy goes first. First-fit covers are not
/// irredundant — a later kept entry can re-cover an earlier one's
/// unique edges — and neither is the lazy-greedy output once pins are
/// seeded, so this pass strictly helps both.
fn prune_redundant(
    entries: &[Arc<CorpusEntry>],
    sets: &[EdgeSet],
    pinned: &[bool],
    kept: &mut Vec<usize>,
) {
    let mut multiplicity: HashMap<u64, u32> = HashMap::new();
    for &i in kept.iter() {
        for k in edge_keys(&sets[i]) {
            *multiplicity.entry(k).or_insert(0) += 1;
        }
    }
    let mut order: Vec<usize> = kept
        .iter()
        .copied()
        .filter(|&i| !pinned.get(i).copied().unwrap_or(false))
        .collect();
    order.sort_unstable_by(|&a, &b| {
        entries[b]
            .minset_weight()
            .cmp(&entries[a].minset_weight())
            .then(b.cmp(&a))
    });
    let mut removed: HashSet<usize> = HashSet::new();
    for i in order {
        let keys = edge_keys(&sets[i]);
        if keys.iter().all(|k| multiplicity[k] >= 2) {
            for k in keys {
                *multiplicity.get_mut(&k).expect("counted above") -= 1;
            }
            removed.insert(i);
        }
    }
    kept.retain(|i| !removed.contains(i));
}
