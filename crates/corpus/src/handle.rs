//! A campaign's view into a corpus store.

use std::sync::Arc;

use rand::prelude::*;
use snowplow_kernel::{EdgeSet, ExecResult, Kernel, Vm};
use snowplow_prog::Prog;
use snowplow_syslang::Registry;

use crate::entry::CorpusEntry;
use crate::minset;
use crate::store::CorpusStore;

/// One campaign's corpus: a view (admission order, selection weights,
/// schedule overrides, pin flags) over a [`CorpusStore`].
///
/// The handle is the drop-in successor of the historical per-campaign
/// `Corpus`: every selection decision reads only the view, so a handle
/// over a *private* store (the default) behaves bit-identically to the
/// old type, and handles sharing a store stay deterministic no matter
/// what other campaigns ingest. On a dedup hit the canonical `Arc`
/// still enters this handle's view — the store saves the memory, the
/// campaign sees exactly the entry it admitted.
#[derive(Clone, Default)]
pub struct CorpusHandle {
    store: CorpusStore,
    /// Admitted entries in admission order (canonical store `Arc`s).
    view: Vec<Arc<CorpusEntry>>,
    /// Store ids parallel to `view`.
    ids: Vec<u32>,
    /// Per-view pin flags (this campaign's crash witnesses).
    pinned: Vec<bool>,
    /// Sum of contribution weights over the view.
    total_weight: u64,
    /// Distance-weighted scheduling overrides, parallel to `view`.
    /// `None` (the default) leaves [`CorpusHandle::choose`]
    /// byte-identical to the pre-scheduling behavior; entries admitted
    /// after the weights were computed fall back to their contribution
    /// weight until the scheduler recomputes.
    sched: Option<Vec<u64>>,
    /// Admissions answered by store dedup (this handle only).
    dedup_hits: u64,
}

impl std::fmt::Debug for CorpusHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CorpusHandle")
            .field("entries", &self.view.len())
            .field("total_weight", &self.total_weight)
            .field("sched", &self.sched.as_ref().map(Vec::len))
            .field("dedup_hits", &self.dedup_hits)
            .finish()
    }
}

impl CorpusHandle {
    /// An empty corpus over its own private store.
    pub fn new() -> CorpusHandle {
        CorpusHandle::default()
    }

    /// An empty view into an existing (typically shared) store.
    pub fn attached(store: CorpusStore) -> CorpusHandle {
        CorpusHandle {
            store,
            ..CorpusHandle::default()
        }
    }

    /// The store this handle ingests into.
    pub fn store(&self) -> &CorpusStore {
        &self.store
    }

    /// Number of entries in this view.
    pub fn len(&self) -> usize {
        self.view.len()
    }

    /// Whether the view is empty.
    pub fn is_empty(&self) -> bool {
        self.view.is_empty()
    }

    /// Admits a program with the coverage of its execution (no measured
    /// cost; see [`CorpusHandle::add_weighted`]).
    pub fn add(&mut self, prog: Prog, exec: &ExecResult, new_edges: usize) {
        self.add_weighted(prog, exec, new_edges, 0);
    }

    /// Admits a program, capturing its measured execution cost (ns) for
    /// the weighted minset.
    pub fn add_weighted(
        &mut self,
        prog: Prog,
        exec: &ExecResult,
        new_edges: usize,
        exec_time_ns: u64,
    ) {
        let entry = CorpusEntry {
            prog,
            coverage: exec.coverage(),
            exec: exec.clone(),
            new_edges,
            exec_time_ns,
        };
        let (id, arc, hit) = self.store.ingest(entry);
        if hit {
            self.dedup_hits += 1;
        }
        self.total_weight += arc.contribution_weight();
        self.view.push(arc);
        self.ids.push(id);
        self.pinned.push(false);
    }

    /// Admits a program only if it passes the static linter: a corpus
    /// poisoned by malformed programs (dangling resource refs, stale
    /// lengths) wastes every mutation budget spent on its entries, so
    /// ingestion is the enforcement point. Returns whether the program
    /// was admitted.
    pub fn add_checked(
        &mut self,
        reg: &Registry,
        prog: Prog,
        exec: &ExecResult,
        new_edges: usize,
    ) -> bool {
        self.add_checked_weighted(reg, prog, exec, new_edges, 0)
    }

    /// [`CorpusHandle::add_checked`] with a measured execution cost.
    pub fn add_checked_weighted(
        &mut self,
        reg: &Registry,
        prog: Prog,
        exec: &ExecResult,
        new_edges: usize,
        exec_time_ns: u64,
    ) -> bool {
        if snowplow_analysis::lint(reg, &prog).is_empty() {
            self.add_weighted(prog, exec, new_edges, exec_time_ns);
            true
        } else {
            false
        }
    }

    /// Pins the most recently admitted entry: minimization will never
    /// drop it (the campaign pins crash witnesses at admission).
    pub fn pin_last(&mut self) {
        if let Some(flag) = self.pinned.last_mut() {
            *flag = true;
            self.store.pin(self.ids[self.ids.len() - 1]);
        }
    }

    /// Per-view pin flags, in admission order.
    pub fn pinned_flags(&self) -> &[bool] {
        &self.pinned
    }

    /// Admissions of this handle answered by store dedup.
    pub fn dedup_hits(&self) -> u64 {
        self.dedup_hits
    }

    /// Installs (or clears, with `None`) per-entry scheduling weights.
    /// While installed, the contribution-weighted half of
    /// [`CorpusHandle::choose`] draws by these weights instead; the
    /// recency window is untouched. Weights must be non-zero to keep
    /// every entry selectable.
    pub fn install_schedule(&mut self, weights: Option<Vec<u64>>) {
        if let Some(w) = &weights {
            debug_assert!(w.len() <= self.view.len());
            debug_assert!(w.iter().all(|&x| x > 0), "zero weight starves an entry");
        }
        self.sched = weights;
    }

    /// The installed scheduling weights, if any; exposed so a
    /// checkpoint can persist them instead of forcing a recompute on
    /// resume.
    pub fn schedule_weights(&self) -> Option<&[u64]> {
        self.sched.as_deref()
    }

    /// The effective contribution weight of entry `i` under the current
    /// scheduling mode.
    fn effective_weight(&self, i: usize) -> u64 {
        match &self.sched {
            Some(w) if i < w.len() => w[i],
            _ => self.view[i].contribution_weight(),
        }
    }

    /// Picks an entry index: half the time among the most recently
    /// admitted entries (whose coverage frontier is freshest — Syzkaller
    /// likewise prioritizes newly triaged programs), otherwise weighted
    /// by contribution across the whole view (or by the installed
    /// distance-derived weights, see [`CorpusHandle::install_schedule`]).
    pub fn choose(&self, rng: &mut StdRng) -> Option<usize> {
        if self.view.is_empty() {
            return None;
        }
        if self.view.len() > 8 && rng.random_bool(0.5) {
            let window = 32.min(self.view.len());
            let start = self.view.len() - window;
            return Some(rng.random_range(start..self.view.len()));
        }
        if self.sched.is_some() {
            let total: u64 = (0..self.view.len()).map(|i| self.effective_weight(i)).sum();
            let mut pick = rng.random_range(0..total.max(1));
            for i in 0..self.view.len() {
                let w = self.effective_weight(i);
                if pick < w {
                    return Some(i);
                }
                pick -= w;
            }
            return Some(self.view.len() - 1);
        }
        let mut pick = rng.random_range(0..self.total_weight.max(1));
        for (i, e) in self.view.iter().enumerate() {
            let w = e.contribution_weight();
            if pick < w {
                return Some(i);
            }
            pick -= w;
        }
        Some(self.view.len() - 1)
    }

    /// Greedy corpus minimization (the historical first-fit scan):
    /// re-executes every entry from a pristine snapshot (sharded over
    /// `workers` threads) and keeps, in admission order, only the
    /// entries still contributing new edges.
    ///
    /// Re-execution is deterministic and carries no cross-entry state,
    /// and the greedy keep/drop scan runs sequentially over the results
    /// in entry order, so the minimized corpus is identical for any
    /// worker count. Prefer [`CorpusHandle::weighted_minset`], which is
    /// never larger and honors pins.
    pub fn minimize(&self, kernel: &Kernel, workers: usize) -> CorpusHandle {
        let runs = snowplow_pool::scoped_map(
            workers,
            (0..self.view.len()).collect(),
            || {
                let vm = Vm::new(kernel);
                let snap = vm.snapshot();
                (vm, snap)
            },
            |(vm, snap), _, i| {
                vm.restore(snap);
                vm.execute(&self.view[i].prog)
            },
        );
        let mut kept = CorpusHandle::new();
        let mut edges = EdgeSet::new();
        for (entry, exec) in self.view.iter().zip(runs) {
            let new_edges = edges.merge(&exec.edges());
            if new_edges > 0 {
                kept.add_weighted(entry.prog.clone(), &exec, new_edges, entry.exec_time_ns);
            }
        }
        kept
    }

    /// Weighted minset over this view (afl-cmin with a cost model):
    /// re-executes every entry and greedily covers the union edge set
    /// preferring low `exec_time_ns * prog_len` weight per newly
    /// covered edge. Pinned entries (crash witnesses) are always kept.
    ///
    /// The kept set covers exactly the union edge set of the full view,
    /// is never larger than [`CorpusHandle::minimize`]'s result plus
    /// redundant pins, and is identical at any worker count. Kept
    /// entries return in admission order with their contribution counts
    /// recomputed by an admission-order merge scan; pin flags carry
    /// over.
    pub fn weighted_minset(&self, kernel: &Kernel, workers: usize) -> CorpusHandle {
        let (kept_idx, execs) = minset::weighted_minset(kernel, workers, &self.view, &self.pinned);
        let mut kept = CorpusHandle::new();
        let mut edges = EdgeSet::new();
        for &i in &kept_idx {
            let new_edges = edges.merge(&execs[i].edges());
            kept.add_weighted(
                self.view[i].prog.clone(),
                &execs[i],
                new_edges,
                self.view[i].exec_time_ns,
            );
            if self.pinned[i] {
                kept.pin_last();
            }
        }
        kept
    }

    /// Rebuilds a view from persisted parts (snapshot restore). The
    /// entries are re-ingested into a fresh private store — rebuilding
    /// the dedup map and edge index — *without* advancing any hit
    /// counter: `dedup_hits` restores to its serialized value.
    pub fn restore_parts(
        entries: Vec<CorpusEntry>,
        sched: Option<Vec<u64>>,
        pinned: Vec<bool>,
        dedup_hits: u64,
    ) -> CorpusHandle {
        debug_assert_eq!(entries.len(), pinned.len());
        let mut handle = CorpusHandle::new();
        for entry in entries {
            let (id, arc) = handle.store.ingest_restored(Arc::new(entry));
            handle.total_weight += arc.contribution_weight();
            handle.view.push(arc);
            handle.ids.push(id);
            handle.pinned.push(false);
        }
        for (i, pin) in pinned.into_iter().enumerate() {
            if pin {
                handle.pinned[i] = true;
                handle.store.pin(handle.ids[i]);
            }
        }
        handle.sched = sched;
        handle.dedup_hits = dedup_hits;
        handle
    }

    /// Re-attaches this view to `store` (the shared-corpus resume
    /// path): every view entry is re-ingested, deduplicating against
    /// whatever other resumed campaigns already contributed, and the
    /// view swaps to the store's canonical `Arc`s. No hit counter
    /// advances — any duplication found here was counted before the
    /// checkpoint. A no-op when the handle already uses `store`.
    pub fn reattach(&mut self, store: &CorpusStore) {
        if self.store.same_store(store) {
            return;
        }
        self.store = store.clone();
        let old_ids = std::mem::take(&mut self.ids);
        debug_assert_eq!(old_ids.len(), self.view.len());
        for (i, slot) in self.view.iter_mut().enumerate() {
            let (id, arc) = self.store.ingest_restored(Arc::clone(slot));
            *slot = arc;
            self.ids.push(id);
            if self.pinned[i] {
                self.store.pin(id);
            }
        }
    }

    /// Reads an entry.
    pub fn entry(&self, idx: usize) -> &CorpusEntry {
        &self.view[idx]
    }

    /// Iterates over entries in admission order.
    pub fn iter(&self) -> impl Iterator<Item = &CorpusEntry> {
        self.view.iter().map(Arc::as_ref)
    }

    /// The view as shared entries (what [`ScheduleContext`]
    /// carries).
    ///
    /// [`ScheduleContext`]: crate::ScheduleContext
    pub fn entries(&self) -> &[Arc<CorpusEntry>] {
        &self.view
    }

    /// For each view entry, the store-wide rarity of its rarest edge
    /// (shortest posting list; 1 = unique to this entry). Input to the
    /// cost-normalized rare-edge scheduler.
    pub fn rarity(&self) -> Vec<u32> {
        self.store.rarity(&self.ids)
    }

    /// Deprecated alias of [`CorpusHandle::install_schedule`].
    #[deprecated(since = "0.1.0", note = "use `install_schedule`")]
    pub fn set_schedule_weights(&mut self, weights: Option<Vec<u64>>) {
        self.install_schedule(weights);
    }

    /// Deprecated alias of [`CorpusHandle::restore_parts`] for
    /// pre-store snapshots (no pins, no dedup accounting).
    #[deprecated(since = "0.1.0", note = "use `restore_parts`")]
    pub fn from_entries(entries: Vec<CorpusEntry>, sched: Option<Vec<u64>>) -> CorpusHandle {
        let n = entries.len();
        CorpusHandle::restore_parts(entries, sched, vec![false; n], 0)
    }
}
