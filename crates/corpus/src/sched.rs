//! Seed scheduling policies.
//!
//! Historically the fuzzer had three weight paths tangled together:
//! the baseline contribution weights baked into `Corpus::choose`, the
//! frontier-distance overrides installed by `set_schedule_weights`, and
//! ad-hoc uniform selection in tooling. [`SeedScheduler`] is the one
//! interface behind all of them: a policy looks at a
//! [`ScheduleContext`] and either returns override weights to install
//! on the handle, or `None` to fall back to per-entry contribution
//! weights.

use std::sync::Arc;

use crate::entry::CorpusEntry;

/// Which seed-selection policy a campaign runs.
///
/// Non-exhaustive: match with a wildcard arm. Downstream code selects a
/// policy through [`CorpusConfig`](crate::CorpusConfig)'s builder.
#[non_exhaustive]
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SchedulePolicy {
    /// The historical default: weight by new-edge contribution
    /// (`1 + new_edges`), no override weights installed.
    #[default]
    Contribution,
    /// Every entry equally likely (outside the recency window).
    Uniform,
    /// Frontier-distance scheduling: entries whose coverage sits close
    /// to uncovered CFG frontier blocks are up-weighted. Needs block
    /// distances from the campaign's static analysis; equivalent to the
    /// historical `distance_scheduling` flag.
    Distance,
    /// Cost-normalized rare-edge scheduling: entries holding rare edges
    /// (short posting lists in the store's inverted index) are
    /// up-weighted, discounted by how much slower than the corpus mean
    /// they execute.
    CostNormalizedRareEdge,
}

impl SchedulePolicy {
    /// Stable one-byte tag for snapshot serialization.
    pub fn to_tag(self) -> u8 {
        match self {
            SchedulePolicy::Contribution => 0,
            SchedulePolicy::Uniform => 1,
            SchedulePolicy::Distance => 2,
            SchedulePolicy::CostNormalizedRareEdge => 3,
        }
    }

    /// Inverse of [`SchedulePolicy::to_tag`].
    pub fn from_tag(tag: u8) -> Option<SchedulePolicy> {
        match tag {
            0 => Some(SchedulePolicy::Contribution),
            1 => Some(SchedulePolicy::Uniform),
            2 => Some(SchedulePolicy::Distance),
            3 => Some(SchedulePolicy::CostNormalizedRareEdge),
            _ => None,
        }
    }
}

/// Everything a scheduler may consult when weighing a corpus view.
/// Inputs a policy does not need stay `None` and cost nothing to
/// assemble.
pub struct ScheduleContext<'a> {
    /// The view's entries, in admission order.
    pub entries: &'a [Arc<CorpusEntry>],
    /// Per-block shortest distance (in CFG edges) to the campaign's
    /// current coverage frontier; `None` for unreachable blocks.
    /// Indexed by block id. Required by [`SchedulePolicy::Distance`].
    pub block_distance: Option<&'a [Option<u32>]>,
    /// Per-entry rarity of the rarest covered edge (shortest posting
    /// list in the store index; see
    /// [`CorpusHandle::rarity`](crate::CorpusHandle::rarity)). Required
    /// by [`SchedulePolicy::CostNormalizedRareEdge`].
    pub rarity: Option<&'a [u32]>,
}

/// A seed-selection policy: maps a corpus view to override weights.
///
/// Returning `None` means "no override" — the handle falls back to
/// per-entry contribution weights, which is also the cheapest path
/// (no weight vector allocated or scanned).
pub trait SeedScheduler: Send + Sync {
    /// Policy name, for telemetry and docs.
    fn name(&self) -> &'static str;

    /// Override weights for the view, parallel to `ctx.entries`, or
    /// `None` to use contribution weights. Every returned weight must
    /// be non-zero.
    fn weights(&self, ctx: &ScheduleContext<'_>) -> Option<Vec<u64>>;
}

/// The static scheduler implementing `policy`.
pub fn scheduler_for(policy: SchedulePolicy) -> &'static dyn SeedScheduler {
    match policy {
        SchedulePolicy::Contribution => &Contribution,
        SchedulePolicy::Uniform => &Uniform,
        SchedulePolicy::Distance => &Distance,
        SchedulePolicy::CostNormalizedRareEdge => &CostNormalizedRareEdge,
    }
}

struct Contribution;

impl SeedScheduler for Contribution {
    fn name(&self) -> &'static str {
        "contribution"
    }

    fn weights(&self, _ctx: &ScheduleContext<'_>) -> Option<Vec<u64>> {
        None
    }
}

struct Uniform;

impl SeedScheduler for Uniform {
    fn name(&self) -> &'static str {
        "uniform"
    }

    fn weights(&self, ctx: &ScheduleContext<'_>) -> Option<Vec<u64>> {
        Some(vec![1; ctx.entries.len()])
    }
}

struct Distance;

impl SeedScheduler for Distance {
    fn name(&self) -> &'static str {
        "distance"
    }

    /// An entry's distance to the frontier is the minimum distance over
    /// its covered blocks; the bonus `256 >> d` halves per CFG step and
    /// vanishes beyond eight steps, so far-from-frontier entries keep
    /// their baseline contribution weight rather than starving.
    fn weights(&self, ctx: &ScheduleContext<'_>) -> Option<Vec<u64>> {
        let dist = ctx.block_distance?;
        Some(
            ctx.entries
                .iter()
                .map(|e| {
                    let d = e
                        .coverage
                        .iter()
                        .filter_map(|b| dist[b.index()])
                        .min()
                        .unwrap_or(u32::MAX);
                    1 + e.new_edges as u64 + (256u64 >> d.min(8))
                })
                .collect(),
        )
    }
}

struct CostNormalizedRareEdge;

impl SeedScheduler for CostNormalizedRareEdge {
    fn name(&self) -> &'static str {
        "cost_normalized_rare_edge"
    }

    /// Bonus `(256 / rarity) * (mean_cost / cost)`: an entry uniquely
    /// covering an edge gets the full 256 at mean cost, scaled down the
    /// more entries share its rarest edge and the slower it runs
    /// relative to the corpus mean. Capped at `1 << 20` so a
    /// zero-measured-cost outlier cannot absorb the whole distribution.
    fn weights(&self, ctx: &ScheduleContext<'_>) -> Option<Vec<u64>> {
        let rarity = ctx.rarity?;
        if ctx.entries.is_empty() {
            return Some(Vec::new());
        }
        let mean: u64 = ctx
            .entries
            .iter()
            .map(|e| e.exec_time_ns.max(1))
            .sum::<u64>()
            / ctx.entries.len() as u64;
        Some(
            ctx.entries
                .iter()
                .zip(rarity)
                .map(|(e, &r)| {
                    let cost = e.exec_time_ns.max(1);
                    let bonus = ((256 / r.max(1) as u64) as u128 * mean.max(1) as u128
                        / cost as u128)
                        .min(1 << 20) as u64;
                    1 + e.new_edges as u64 + bonus
                })
                .collect(),
        )
    }
}
