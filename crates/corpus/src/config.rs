//! Corpus configuration.

use crate::sched::SchedulePolicy;
use crate::store::CorpusStore;

/// How a campaign's corpus behaves: which seed-selection policy runs
/// and whether the campaign ingests into a shared store.
///
/// Non-exhaustive — construct via [`CorpusConfig::builder`] (or
/// `Default`), never by struct literal, so fields can be added without
/// breaking downstream crates.
#[non_exhaustive]
#[derive(Debug, Clone, Default)]
pub struct CorpusConfig {
    /// Seed-selection policy. `Contribution` (the default) reproduces
    /// the historical behavior bit-for-bit.
    pub policy: SchedulePolicy,
    /// Shared store to ingest into. `None` (the default) gives the
    /// campaign a private store — again the historical behavior. Fleet
    /// drivers clone one store into every campaign's config to pool
    /// discoveries.
    pub shared: Option<CorpusStore>,
}

impl CorpusConfig {
    /// A fluent builder over the defaults.
    pub fn builder() -> CorpusConfigBuilder {
        CorpusConfigBuilder {
            config: CorpusConfig::default(),
        }
    }
}

/// Builder for [`CorpusConfig`].
#[derive(Debug, Clone)]
pub struct CorpusConfigBuilder {
    config: CorpusConfig,
}

impl CorpusConfigBuilder {
    /// Sets the seed-selection policy.
    pub fn policy(mut self, policy: SchedulePolicy) -> Self {
        self.config.policy = policy;
        self
    }

    /// Ingest into `store` instead of a private one.
    pub fn shared(mut self, store: CorpusStore) -> Self {
        self.config.shared = Some(store);
        self
    }

    /// Finishes the configuration.
    pub fn build(self) -> CorpusConfig {
        self.config
    }
}
