//! Argument path addressing.
//!
//! An [`ArgPath`] names one argument value inside a call's argument tree:
//! the first segment selects a top-level argument, and each further segment
//! descends through a pointer, struct field, array element, or union
//! variant. Paths are the currency of argument localization — the mutation
//! dataset of §3.1, the model output of §3.3, and the mutation engine all
//! speak in paths.

use std::fmt;

/// One step of descent into an argument tree.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum PathSegment {
    /// Select the `i`-th top-level argument (only valid as the first
    /// segment).
    Arg(u16),
    /// Follow a pointer to its pointee.
    Deref,
    /// Select the `i`-th field of a struct.
    Field(u16),
    /// Select the `i`-th element of an array.
    Elem(u16),
    /// Select the active variant of a union (the index recorded is the
    /// *description* variant index, for stable addressing).
    Variant(u16),
}

impl fmt::Display for PathSegment {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PathSegment::Arg(i) => write!(f, "a{i}"),
            PathSegment::Deref => write!(f, "*"),
            PathSegment::Field(i) => write!(f, "f{i}"),
            PathSegment::Elem(i) => write!(f, "e{i}"),
            PathSegment::Variant(i) => write!(f, "v{i}"),
        }
    }
}

/// A path from a call's argument list down to one nested value.
///
/// Paths order lexicographically by segment, which gives a stable,
/// deterministic enumeration order for all flattened arguments of a call.
#[derive(Debug, Clone, Default, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ArgPath {
    segments: Vec<PathSegment>,
}

impl ArgPath {
    /// The empty path (names the argument list itself; rarely useful on
    /// its own).
    pub fn root() -> Self {
        ArgPath::default()
    }

    /// A path selecting top-level argument `i`.
    pub fn arg(i: usize) -> Self {
        ArgPath {
            segments: vec![PathSegment::Arg(i as u16)],
        }
    }

    /// Returns a new path with `seg` appended.
    #[must_use]
    pub fn child(&self, seg: PathSegment) -> Self {
        let mut segments = Vec::with_capacity(self.segments.len() + 1);
        segments.extend_from_slice(&self.segments);
        segments.push(seg);
        ArgPath { segments }
    }

    /// The path's segments, outermost first.
    pub fn segments(&self) -> &[PathSegment] {
        &self.segments
    }

    /// Number of segments.
    pub fn len(&self) -> usize {
        self.segments.len()
    }

    /// Whether this is the root path.
    pub fn is_empty(&self) -> bool {
        self.segments.is_empty()
    }

    /// Index of the top-level argument this path descends through, if any.
    pub fn top_arg(&self) -> Option<usize> {
        match self.segments.first() {
            Some(PathSegment::Arg(i)) => Some(*i as usize),
            _ => None,
        }
    }

    /// Whether `self` is a (non-strict) prefix of `other`.
    pub fn is_prefix_of(&self, other: &ArgPath) -> bool {
        other.segments.len() >= self.segments.len()
            && other.segments[..self.segments.len()] == self.segments[..]
    }

    /// A stable small hash of the path, used as an embedding bucket so the
    /// model can correlate an argument with kernel blocks that mention it.
    /// The bucket space is deliberately small (`1 << 10`) to keep the
    /// learned vocabulary compact.
    pub fn slot(&self) -> u16 {
        let mut h: u32 = 0x9e37_79b9;
        for seg in &self.segments {
            let v: u32 = match seg {
                PathSegment::Arg(i) => 0x1000 | u32::from(*i),
                PathSegment::Deref => 0x2000,
                PathSegment::Field(i) => 0x3000 | u32::from(*i),
                PathSegment::Elem(i) => 0x4000 | u32::from(*i),
                PathSegment::Variant(i) => 0x5000 | u32::from(*i),
            };
            h = h.wrapping_mul(0x0100_0193) ^ v;
        }
        (h % 1024) as u16
    }
}

impl fmt::Display for ArgPath {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.segments.is_empty() {
            return write!(f, "<root>");
        }
        for (i, seg) in self.segments.iter().enumerate() {
            if i > 0 {
                write!(f, ".")?;
            }
            write!(f, "{seg}")?;
        }
        Ok(())
    }
}

impl FromIterator<PathSegment> for ArgPath {
    fn from_iter<T: IntoIterator<Item = PathSegment>>(iter: T) -> Self {
        ArgPath {
            segments: iter.into_iter().collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_round_trips_structure() {
        let p = ArgPath::arg(1)
            .child(PathSegment::Deref)
            .child(PathSegment::Field(2))
            .child(PathSegment::Elem(0));
        assert_eq!(p.to_string(), "a1.*.f2.e0");
        assert_eq!(p.len(), 4);
        assert_eq!(p.top_arg(), Some(1));
    }

    #[test]
    fn prefix_relation() {
        let a = ArgPath::arg(0).child(PathSegment::Deref);
        let b = a.child(PathSegment::Field(3));
        assert!(a.is_prefix_of(&b));
        assert!(a.is_prefix_of(&a));
        assert!(!b.is_prefix_of(&a));
        assert!(!ArgPath::arg(1).is_prefix_of(&b));
    }

    #[test]
    fn slots_are_stable_and_bounded() {
        let p = ArgPath::arg(2).child(PathSegment::Field(1));
        assert_eq!(p.slot(), p.clone().slot());
        assert!(p.slot() < 1024);
        // Different paths should usually land in different buckets.
        let q = ArgPath::arg(2).child(PathSegment::Field(2));
        assert_ne!(p.slot(), q.slot());
    }

    #[test]
    fn ordering_is_lexicographic() {
        let a = ArgPath::arg(0);
        let b = ArgPath::arg(0).child(PathSegment::Deref);
        let c = ArgPath::arg(1);
        assert!(a < b && b < c);
    }
}
