//! The Syzlang-like type system.
//!
//! Types are stored in an arena owned by the [`Registry`](crate::Registry)
//! and referenced by [`TypeId`]; this keeps deeply nested descriptions cheap
//! to share between syscall variants and makes structural walks (argument
//! enumeration, program generation, mutation) allocation-free.

use std::fmt;

/// Index of a type in the registry's type arena.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TypeId(pub u32);

impl TypeId {
    /// Returns the arena index as `usize`.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for TypeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ty{}", self.0)
    }
}

/// Direction of data flow for pointers and resources, mirroring Syzlang's
/// `in` / `out` / `inout` annotations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Dir {
    /// Read by the kernel.
    In,
    /// Written by the kernel.
    Out,
    /// Both read and written.
    InOut,
}

impl Dir {
    /// Whether the kernel reads this value.
    pub fn is_in(self) -> bool {
        matches!(self, Dir::In | Dir::InOut)
    }

    /// Whether the kernel writes this value.
    pub fn is_out(self) -> bool {
        matches!(self, Dir::Out | Dir::InOut)
    }
}

/// How an integer argument should be generated and mutated.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum IntFormat {
    /// Any value of the given width; generation is biased toward boundary
    /// values and small magnitudes, like Syzkaller's `intN`.
    Any,
    /// A value in `[lo, hi]` (inclusive), like `intN[lo:hi]`.
    Range { lo: u64, hi: u64 },
    /// One of an explicit list of interesting values (e.g. ioctl command
    /// numbers), like `flags` used as an enum.
    Enum { values: Vec<u64> },
}

/// Payload classes for buffer arguments.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum BufferKind {
    /// An opaque byte blob with a size range (inclusive).
    Blob { min_len: usize, max_len: usize },
    /// A NUL-terminated string drawn from a fixed dictionary.
    String { values: Vec<&'static str> },
    /// A filename within the test's working directory (e.g. `./file0`).
    Filename,
}

/// A named, directed field of a struct, union, or syscall argument list.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Field {
    /// Field name as it appears in serialized programs.
    pub name: &'static str,
    /// The field's type.
    pub ty: TypeId,
    /// Data-flow direction.
    pub dir: Dir,
}

impl Field {
    /// Convenience constructor for an `in` field.
    pub fn new(name: &'static str, ty: TypeId) -> Self {
        Field {
            name,
            ty,
            dir: Dir::In,
        }
    }

    /// Convenience constructor for an `out` field.
    pub fn out(name: &'static str, ty: TypeId) -> Self {
        Field {
            name,
            ty,
            dir: Dir::Out,
        }
    }
}

/// A node of the description type tree.
///
/// The variants deliberately mirror the subset of Syzlang that the paper's
/// argument-mutation study exercises: scalar values with several generation
/// disciplines, flag words, pointers to nested payloads, buffers, arrays,
/// structs, unions, length fields, and kernel resources.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Type {
    /// An integer scalar of `bits` width (8/16/32/64) with a generation
    /// format.
    Int { bits: u8, format: IntFormat },
    /// A bitwise-OR flag word; each element of `values` is a single flag
    /// bit or composite constant, and `name` names the flag set (used by
    /// the serializer).
    Flags {
        name: &'static str,
        values: Vec<u64>,
        bits: u8,
    },
    /// A compile-time constant the program must pass verbatim (e.g. a
    /// fixed ioctl command); not a mutation site.
    Const { value: u64, bits: u8 },
    /// A pointer to a nested value. `optional` pointers may be NULL.
    Ptr {
        dir: Dir,
        elem: TypeId,
        optional: bool,
    },
    /// A byte buffer (blob, dictionary string, or filename).
    Buffer { kind: BufferKind },
    /// A variable-length array of `elem` with an inclusive length range.
    Array {
        elem: TypeId,
        min_len: usize,
        max_len: usize,
    },
    /// A struct with named fields, laid out in order.
    Struct {
        name: &'static str,
        fields: Vec<Field>,
    },
    /// A tagged union: exactly one variant is instantiated.
    Union {
        name: &'static str,
        variants: Vec<Field>,
    },
    /// The byte length of a sibling field (by index within the enclosing
    /// struct or argument list); computed, not mutated.
    Len { target: usize, bits: u8 },
    /// A kernel resource (file descriptor, socket, timer id, ...). `In`
    /// resources consume a value produced by an earlier call; `Out`
    /// resources are produced by this call.
    Resource {
        kind: crate::registry::ResourceId,
        dir: Dir,
    },
}

impl Type {
    /// Whether a value of this type is a meaningful *argument mutation*
    /// site. Constants and computed lengths are excluded, exactly as
    /// Syzkaller excludes them from argument mutation.
    pub fn is_mutable(&self) -> bool {
        !matches!(self, Type::Const { .. } | Type::Len { .. })
    }

    /// Width in bits for scalar-like types, if applicable.
    pub fn bits(&self) -> Option<u8> {
        match self {
            Type::Int { bits, .. }
            | Type::Flags { bits, .. }
            | Type::Const { bits, .. }
            | Type::Len { bits, .. } => Some(*bits),
            _ => None,
        }
    }

    /// A short, stable kind tag used for feature embedding and debugging.
    pub fn kind_name(&self) -> &'static str {
        match self {
            Type::Int { .. } => "int",
            Type::Flags { .. } => "flags",
            Type::Const { .. } => "const",
            Type::Ptr { .. } => "ptr",
            Type::Buffer {
                kind: BufferKind::Filename,
            } => "filename",
            Type::Buffer {
                kind: BufferKind::String { .. },
            } => "string",
            Type::Buffer { .. } => "buffer",
            Type::Array { .. } => "array",
            Type::Struct { .. } => "struct",
            Type::Union { .. } => "union",
            Type::Len { .. } => "len",
            Type::Resource { .. } => "resource",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dir_predicates() {
        assert!(Dir::In.is_in());
        assert!(!Dir::In.is_out());
        assert!(Dir::Out.is_out());
        assert!(Dir::InOut.is_in() && Dir::InOut.is_out());
    }

    #[test]
    fn const_and_len_are_not_mutable() {
        assert!(!Type::Const { value: 1, bits: 32 }.is_mutable());
        assert!(!Type::Len {
            target: 0,
            bits: 32
        }
        .is_mutable());
        assert!(Type::Int {
            bits: 32,
            format: IntFormat::Any
        }
        .is_mutable());
    }

    #[test]
    fn kind_names_are_distinct_for_buffers() {
        let fname = Type::Buffer {
            kind: BufferKind::Filename,
        };
        let blob = Type::Buffer {
            kind: BufferKind::Blob {
                min_len: 0,
                max_len: 8,
            },
        };
        assert_eq!(fname.kind_name(), "filename");
        assert_eq!(blob.kind_name(), "buffer");
    }

    #[test]
    fn bits_reported_for_scalars_only() {
        assert_eq!(
            Type::Int {
                bits: 16,
                format: IntFormat::Any
            }
            .bits(),
            Some(16)
        );
        assert_eq!(
            Type::Buffer {
                kind: BufferKind::Filename
            }
            .bits(),
            None
        );
    }
}
