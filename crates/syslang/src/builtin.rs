//! The built-in `linux_sim` description set.
//!
//! This module describes the user-space interface of the simulated kernel:
//! 60+ syscall variants across the file, memory, socket, pipe, epoll, timer,
//! ioctl (including the SCSI/ATA pass-through family central to §5.3.2 of
//! the paper), packet-socket, io_uring, watch-queue, and misc subsystems.
//!
//! The descriptions intentionally use deep nesting (structs of arrays of
//! structs, unions, length fields) so that test programs expose the same
//! order-of-magnitude argument search space the paper measures: dozens of
//! flattened arguments per program (§5.1 reports >60 on average).

use crate::builder::RegistryBuilder;
use crate::registry::Registry;
use crate::types::{Dir, Field, IntFormat};

/// Common `open(2)` flag values (subset of Linux's).
pub const OPEN_FLAGS: &[u64] = &[0x0, 0x1, 0x2, 0x40, 0x80, 0x200, 0x400, 0x800, 0x1000];
/// `mmap` protection bits.
pub const PROT_FLAGS: &[u64] = &[0x0, 0x1, 0x2, 0x4];
/// `mmap` mapping bits.
pub const MAP_FLAGS: &[u64] = &[0x01, 0x02, 0x10, 0x20, 0x100];
/// `msg_flags` for send/recv.
pub const MSG_FLAGS: &[u64] = &[0x0, 0x1, 0x2, 0x40, 0x80, 0x4000, 0x8000];
/// Socket families we simulate.
pub const AF_INET: u64 = 2;
/// Unix-domain family constant.
pub const AF_UNIX: u64 = 1;
/// Packet-socket family constant.
pub const AF_PACKET: u64 = 17;
/// `SCSI_IOCTL_SEND_COMMAND` command number (as in Linux).
pub const SCSI_IOCTL_SEND_COMMAND: u64 = 0x1;
/// `SG_IO` command number.
pub const SG_IO: u64 = 0x2285;
/// ATA-16 pass-through opcode.
pub const ATA_16: u64 = 0x85;
/// ATA protocol values (PIO data-in is `4`; the paper's bug needs PIO).
pub const ATA_PROTOCOLS: &[u64] = &[0, 3, 4, 5, 6, 12];
/// ATA command values (`ATA_NOP` is `0x00`).
pub const ATA_COMMANDS: &[u64] = &[0x00, 0x20, 0x25, 0xec, 0xca, 0xe7];

/// Builds the full `linux_sim` registry.
///
/// The returned registry is deterministic: calling this twice yields
/// structurally identical registries with identical ids.
pub fn linux_sim() -> Registry {
    let mut b = RegistryBuilder::new();

    // ---- Resource kinds -------------------------------------------------
    let fd = b.resource("fd", &[u64::MAX]);
    let sock = b.resource("sock", &[u64::MAX]);
    let scsi_fd = b.resource("scsi_fd", &[u64::MAX]);
    let epoll_fd = b.resource("epoll_fd", &[u64::MAX]);
    let timer_id = b.resource("timer_id", &[0]);
    let pipe_fd = b.resource("pipe_fd", &[u64::MAX]);
    let event_fd = b.resource("event_fd", &[u64::MAX]);
    let uring_fd = b.resource("uring_fd", &[u64::MAX]);
    let pkt_sock = b.resource("pkt_sock", &[u64::MAX]);
    let watch_fd = b.resource("watch_fd", &[u64::MAX]);
    let key_id = b.resource("key_id", &[0]);

    // ---- Shared primitive types -----------------------------------------
    let fname = b.filename();
    let fname_ptr = b.ptr_in(fname);
    let open_flags = b.flags("open_flags", OPEN_FLAGS, 32);
    let fmode = b.int_range(0, 0o777, 16);
    let size32 = b.int(32, IntFormat::Any);
    let size64 = b.int(64, IntFormat::Any);
    let off64 = b.int(64, IntFormat::Any);
    let small_blob = b.blob(1, 64);
    let small_blob_in = b.ptr_in(small_blob);
    let small_blob_out = b.ptr_out(small_blob);
    let fd_in = b.res_in(fd);
    let sock_in = b.res_in(sock);
    let scsi_in = b.res_in(scsi_fd);
    let epoll_in = b.res_in(epoll_fd);
    let timer_in = b.res_in(timer_id);
    let pipe_in = b.res_in(pipe_fd);
    let event_in = b.res_in(event_fd);
    let uring_in = b.res_in(uring_fd);
    let pkt_in = b.res_in(pkt_sock);
    let watch_in = b.res_in(watch_fd);
    let key_in = b.res_in(key_id);

    // ---- File subsystem --------------------------------------------------
    b.syscall(
        "open",
        "open",
        &[
            Field::new("file", fname_ptr),
            Field::new("flags", open_flags),
            Field::new("mode", fmode),
        ],
        Some(fd),
    );
    let dirfd_enum = b.int_enum(&[u64::MAX, 0xffff_ff9c /* AT_FDCWD */], 32);
    b.syscall(
        "openat",
        "openat",
        &[
            Field::new("dirfd", dirfd_enum),
            Field::new("file", fname_ptr),
            Field::new("flags", open_flags),
            Field::new("mode", fmode),
        ],
        Some(fd),
    );
    b.syscall(
        "creat",
        "creat",
        &[Field::new("file", fname_ptr), Field::new("mode", fmode)],
        Some(fd),
    );
    b.syscall("close", "close", &[Field::new("fd", fd_in)], None);
    b.syscall(
        "read",
        "read",
        &[
            Field::new("fd", fd_in),
            Field {
                name: "buf",
                ty: small_blob_out,
                dir: Dir::Out,
            },
            Field::new("count", size64),
        ],
        None,
    );
    b.syscall(
        "write",
        "write",
        &[
            Field::new("fd", fd_in),
            Field::new("buf", small_blob_in),
            Field::new("count", size64),
        ],
        None,
    );
    b.syscall(
        "pread64",
        "pread64",
        &[
            Field::new("fd", fd_in),
            Field {
                name: "buf",
                ty: small_blob_out,
                dir: Dir::Out,
            },
            Field::new("count", size64),
            Field::new("pos", off64),
        ],
        None,
    );
    b.syscall(
        "pwrite64",
        "pwrite64",
        &[
            Field::new("fd", fd_in),
            Field::new("buf", small_blob_in),
            Field::new("count", size64),
            Field::new("pos", off64),
        ],
        None,
    );
    let whence = b.int_enum(&[0, 1, 2, 3, 4], 32);
    b.syscall(
        "lseek",
        "lseek",
        &[
            Field::new("fd", fd_in),
            Field::new("offset", off64),
            Field::new("whence", whence),
        ],
        None,
    );
    b.syscall(
        "ftruncate",
        "ftruncate",
        &[Field::new("fd", fd_in), Field::new("len", size64)],
        None,
    );
    let falloc_mode = b.flags("falloc_flags", &[0x0, 0x1, 0x2, 0x8, 0x10, 0x20, 0x40], 32);
    b.syscall(
        "fallocate",
        "fallocate",
        &[
            Field::new("fd", fd_in),
            Field::new("mode", falloc_mode),
            Field::new("offset", off64),
            Field::new("len", size64),
        ],
        None,
    );
    let stat_buf = {
        let u64_any = size64;
        let st = b.strukt(
            "stat",
            vec![
                Field::out("ino", u64_any),
                Field::out("size", u64_any),
                Field::out("mode", u64_any),
                Field::out("nlink", u64_any),
            ],
        );
        b.ptr_out(st)
    };
    b.syscall(
        "fstat",
        "fstat",
        &[
            Field::new("fd", fd_in),
            Field {
                name: "statbuf",
                ty: stat_buf,
                dir: Dir::Out,
            },
        ],
        None,
    );
    b.syscall(
        "rename",
        "rename",
        &[Field::new("old", fname_ptr), Field::new("new", fname_ptr)],
        None,
    );
    b.syscall("unlink", "unlink", &[Field::new("file", fname_ptr)], None);
    b.syscall(
        "mkdir",
        "mkdir",
        &[Field::new("file", fname_ptr), Field::new("mode", fmode)],
        None,
    );
    b.syscall(
        "symlink",
        "symlink",
        &[
            Field::new("target", fname_ptr),
            Field::new("link", fname_ptr),
        ],
        None,
    );
    b.syscall("dup", "dup", &[Field::new("fd", fd_in)], Some(fd));
    b.syscall("fsync", "fsync", &[Field::new("fd", fd_in)], None);
    let fcntl_fl = b.flags(
        "fcntl_status_flags",
        &[0x0, 0x400, 0x800, 0x1000, 0x4000],
        32,
    );
    let f_setfl = b.constant(4, 32);
    b.syscall(
        "fcntl$setfl",
        "fcntl",
        &[
            Field::new("fd", fd_in),
            Field::new("cmd", f_setfl),
            Field::new("flags", fcntl_fl),
        ],
        None,
    );
    let f_dupfd = b.constant(0, 32);
    b.syscall(
        "fcntl$dupfd",
        "fcntl",
        &[
            Field::new("fd", fd_in),
            Field::new("cmd", f_dupfd),
            Field::new("min", size32),
        ],
        Some(fd),
    );
    let lock_op = b.int_enum(&[1, 2, 4, 8, 5, 6], 32);
    b.syscall(
        "flock",
        "flock",
        &[Field::new("fd", fd_in), Field::new("op", lock_op)],
        None,
    );

    // ---- Memory subsystem -------------------------------------------------
    let addr_hint = b.int_enum(&[0, 0x2000_0000, 0x7f00_0000_0000], 64);
    let prot = b.flags("prot_flags", PROT_FLAGS, 32);
    let map_fl = b.flags("map_flags", MAP_FLAGS, 32);
    b.syscall(
        "mmap",
        "mmap",
        &[
            Field::new("addr", addr_hint),
            Field::new("len", size64),
            Field::new("prot", prot),
            Field::new("flags", map_fl),
            Field::new("fd", fd_in),
            Field::new("offset", off64),
        ],
        None,
    );
    b.syscall(
        "munmap",
        "munmap",
        &[Field::new("addr", addr_hint), Field::new("len", size64)],
        None,
    );
    let madv = b.int_enum(&[0, 1, 2, 3, 4, 8, 9, 10, 12, 14, 15, 21, 22], 32);
    b.syscall(
        "madvise",
        "madvise",
        &[
            Field::new("addr", addr_hint),
            Field::new("len", size64),
            Field::new("advice", madv),
        ],
        None,
    );
    b.syscall(
        "mprotect",
        "mprotect",
        &[
            Field::new("addr", addr_hint),
            Field::new("len", size64),
            Field::new("prot", prot),
        ],
        None,
    );
    let msync_fl = b.flags("msync_flags", &[1, 2, 4], 32);
    b.syscall(
        "msync",
        "msync",
        &[
            Field::new("addr", addr_hint),
            Field::new("len", size64),
            Field::new("flags", msync_fl),
        ],
        None,
    );

    // ---- Socket subsystem --------------------------------------------------
    let sockaddr_in = {
        let family = b.constant(AF_INET, 16);
        let port = b.int_range(0, 65535, 16);
        let addr = b.int_enum(&[0, 0x7f00_0001, 0x0a00_0001, 0xe000_0001, 0xffff_ffff], 32);
        b.strukt(
            "sockaddr_in",
            vec![
                Field::new("family", family),
                Field::new("port", port),
                Field::new("addr", addr),
            ],
        )
    };
    let sockaddr_in_ptr = b.ptr_in(sockaddr_in);
    let sock_type = b.int_enum(&[1, 2, 3, 5], 32);
    let inet_proto = b.int_enum(&[0, 6, 17, 255], 32);
    {
        let dom = b.constant(AF_INET, 32);
        let stream = b.constant(1, 32);
        let dgram = b.constant(2, 32);
        b.syscall(
            "socket$inet_tcp",
            "socket",
            &[
                Field::new("domain", dom),
                Field::new("type", stream),
                Field::new("proto", inet_proto),
            ],
            Some(sock),
        );
        b.syscall(
            "socket$inet_udp",
            "socket",
            &[
                Field::new("domain", dom),
                Field::new("type", dgram),
                Field::new("proto", inet_proto),
            ],
            Some(sock),
        );
        let udom = b.constant(AF_UNIX, 32);
        b.syscall(
            "socket$unix",
            "socket",
            &[
                Field::new("domain", udom),
                Field::new("type", sock_type),
                Field::new("proto", inet_proto),
            ],
            Some(sock),
        );
    }
    let socklen = b.len_of(1, 32);
    b.syscall(
        "bind$inet",
        "bind",
        &[
            Field::new("sock", sock_in),
            Field::new("addr", sockaddr_in_ptr),
            Field::new("addrlen", socklen),
        ],
        None,
    );
    b.syscall(
        "connect$inet",
        "connect",
        &[
            Field::new("sock", sock_in),
            Field::new("addr", sockaddr_in_ptr),
            Field::new("addrlen", socklen),
        ],
        None,
    );
    let backlog = b.int_range(0, 128, 32);
    b.syscall(
        "listen",
        "listen",
        &[Field::new("sock", sock_in), Field::new("backlog", backlog)],
        None,
    );
    b.syscall(
        "accept",
        "accept",
        &[Field::new("sock", sock_in)],
        Some(sock),
    );
    let msg_fl = b.flags("msg_flags", MSG_FLAGS, 32);
    b.syscall(
        "sendto$inet",
        "sendto",
        &[
            Field::new("sock", sock_in),
            Field::new("buf", small_blob_in),
            Field::new("len", size64),
            Field::new("flags", msg_fl),
            Field::new("addr", sockaddr_in_ptr),
            Field::new("addrlen", socklen),
        ],
        None,
    );
    b.syscall(
        "recvfrom$inet",
        "recvfrom",
        &[
            Field::new("sock", sock_in),
            Field {
                name: "buf",
                ty: small_blob_out,
                dir: Dir::Out,
            },
            Field::new("len", size64),
            Field::new("flags", msg_fl),
        ],
        None,
    );
    // msghdr: the deeply nested payload showcased in the paper's Figure 4.
    let iovec = {
        let base = small_blob_in;
        let l = b.len_of(0, 64);
        b.strukt(
            "iovec",
            vec![Field::new("base", base), Field::new("len", l)],
        )
    };
    let iov_arr = b.array(iovec, 1, 4);
    let iov_ptr = b.ptr_in(iov_arr);
    let msghdr = {
        let name_ptr = b.ptr_opt(sockaddr_in);
        let namelen = b.len_of(0, 32);
        let iovlen = b.len_of(2, 64);
        let cbuf = b.blob(0, 32);
        let control = b.ptr_opt(cbuf);
        let controllen = b.len_of(4, 64);
        b.strukt(
            "msghdr",
            vec![
                Field::new("name", name_ptr),
                Field::new("namelen", namelen),
                Field::new("iov", iov_ptr),
                Field::new("iovlen", iovlen),
                Field::new("control", control),
                Field::new("controllen", controllen),
                Field::new("flags", msg_fl),
            ],
        )
    };
    let msghdr_ptr = b.ptr_in(msghdr);
    b.syscall(
        "sendmsg$inet",
        "sendmsg",
        &[
            Field::new("sock", sock_in),
            Field::new("msg", msghdr_ptr),
            Field::new("flags", msg_fl),
        ],
        None,
    );
    b.syscall(
        "recvmsg",
        "recvmsg",
        &[
            Field::new("sock", sock_in),
            Field {
                name: "msg",
                ty: msghdr_ptr,
                dir: Dir::InOut,
            },
            Field::new("flags", msg_fl),
        ],
        None,
    );
    let sol = b.int_enum(&[0, 1, 6, 17, 41, 263], 32);
    let optname = b.int_enum(&[1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 13, 15, 20, 30], 32);
    let optval_int = b.int(32, IntFormat::Any);
    let optval_ptr = {
        let v = b.strukt("optval_int", vec![Field::new("value", optval_int)]);
        b.ptr_in(v)
    };
    let optlen = b.len_of(3, 32);
    b.syscall(
        "setsockopt$int",
        "setsockopt",
        &[
            Field::new("sock", sock_in),
            Field::new("level", sol),
            Field::new("optname", optname),
            Field::new("optval", optval_ptr),
            Field::new("optlen", optlen),
        ],
        None,
    );
    b.syscall(
        "getsockopt",
        "getsockopt",
        &[
            Field::new("sock", sock_in),
            Field::new("level", sol),
            Field::new("optname", optname),
            Field {
                name: "optval",
                ty: small_blob_out,
                dir: Dir::Out,
            },
        ],
        None,
    );
    let how = b.int_enum(&[0, 1, 2], 32);
    b.syscall(
        "shutdown",
        "shutdown",
        &[Field::new("sock", sock_in), Field::new("how", how)],
        None,
    );

    // ---- Packet sockets (af_packet / xdp-flavoured) -------------------------
    {
        let dom = b.constant(AF_PACKET, 32);
        let raw = b.constant(3, 32);
        let eth_proto = b.int_enum(&[0x0003, 0x0800, 0x0806, 0x86dd], 32);
        b.syscall(
            "socket$packet",
            "socket",
            &[
                Field::new("domain", dom),
                Field::new("type", raw),
                Field::new("proto", eth_proto),
            ],
            Some(pkt_sock),
        );
        let tpacket_req = {
            let blk_size = b.int_enum(&[0, 0x1000, 0x10000, 0x100000], 32);
            let blk_nr = b.int_range(0, 1024, 32);
            let frame_size = b.int_enum(&[0, 0x100, 0x800, 0x10000], 32);
            let frame_nr = b.int_range(0, 4096, 32);
            b.strukt(
                "tpacket_req",
                vec![
                    Field::new("block_size", blk_size),
                    Field::new("block_nr", blk_nr),
                    Field::new("frame_size", frame_size),
                    Field::new("frame_nr", frame_nr),
                ],
            )
        };
        let req_ptr = b.ptr_in(tpacket_req);
        let sol_packet = b.constant(263, 32);
        let rx_ring = b.constant(5, 32);
        let reqlen = b.len_of(3, 32);
        b.syscall(
            "setsockopt$packet_rx_ring",
            "setsockopt",
            &[
                Field::new("sock", pkt_in),
                Field::new("level", sol_packet),
                Field::new("optname", rx_ring),
                Field::new("req", req_ptr),
                Field::new("reqlen", reqlen),
            ],
            None,
        );
        let fanout = b.int_enum(&[0, 1, 2, 3, 4, 5, 6, 7], 32);
        let fanout_opt = b.constant(18, 32);
        let fanout_arg = {
            let id = b.int_range(0, 65535, 16);
            b.strukt(
                "fanout_args",
                vec![Field::new("id", id), Field::new("type_flags", fanout)],
            )
        };
        let fanout_ptr = b.ptr_in(fanout_arg);
        let flen = b.len_of(3, 32);
        b.syscall(
            "setsockopt$packet_fanout",
            "setsockopt",
            &[
                Field::new("sock", pkt_in),
                Field::new("level", sol_packet),
                Field::new("optname", fanout_opt),
                Field::new("arg", fanout_ptr),
                Field::new("arglen", flen),
            ],
            None,
        );
        b.syscall(
            "sendmsg$packet",
            "sendmsg",
            &[
                Field::new("sock", pkt_in),
                Field::new("msg", msghdr_ptr),
                Field::new("flags", msg_fl),
            ],
            None,
        );
    }

    // ---- Pipes ---------------------------------------------------------------
    let pipe_flags = b.flags("pipe_flags", &[0x0, 0x800, 0x80000, 0x4000], 32);
    b.syscall(
        "pipe2",
        "pipe2",
        &[Field::new("flags", pipe_flags)],
        Some(pipe_fd),
    );
    let splice_fl = b.flags("splice_flags", &[0x1, 0x2, 0x4, 0x8], 32);
    b.syscall(
        "splice",
        "splice",
        &[
            Field::new("fd_in", pipe_in),
            Field::new("fd_out", fd_in),
            Field::new("len", size64),
            Field::new("flags", splice_fl),
        ],
        None,
    );
    b.syscall(
        "tee",
        "tee",
        &[
            Field::new("fd_in", pipe_in),
            Field::new("fd_out", pipe_in),
            Field::new("len", size64),
            Field::new("flags", splice_fl),
        ],
        None,
    );

    // ---- epoll / eventfd -------------------------------------------------------
    let epoll_fl = b.flags("epoll_create_flags", &[0x0, 0x80000], 32);
    b.syscall(
        "epoll_create1",
        "epoll_create1",
        &[Field::new("flags", epoll_fl)],
        Some(epoll_fd),
    );
    let epoll_event = {
        let ev = b.flags(
            "epoll_events",
            &[0x1, 0x2, 0x4, 0x8, 0x10, 0x2000, 0x40000000],
            32,
        );
        let data = size64;
        b.strukt(
            "epoll_event",
            vec![Field::new("events", ev), Field::new("data", data)],
        )
    };
    let ev_ptr = b.ptr_in(epoll_event);
    for (name, opconst) in [
        ("epoll_ctl$add", 1u64),
        ("epoll_ctl$del", 2),
        ("epoll_ctl$mod", 3),
    ] {
        let op = b.constant(opconst, 32);
        b.syscall(
            name,
            "epoll_ctl",
            &[
                Field::new("epfd", epoll_in),
                Field::new("op", op),
                Field::new("fd", fd_in),
                Field::new("event", ev_ptr),
            ],
            None,
        );
    }
    let maxev = b.int_range(1, 64, 32);
    let timeout = b.int_enum(&[0, 1, 100, u64::MAX], 32);
    b.syscall(
        "epoll_wait",
        "epoll_wait",
        &[
            Field::new("epfd", epoll_in),
            Field {
                name: "events",
                ty: small_blob_out,
                dir: Dir::Out,
            },
            Field::new("maxevents", maxev),
            Field::new("timeout", timeout),
        ],
        None,
    );
    let efd_flags = b.flags("eventfd_flags", &[0x0, 0x1, 0x800, 0x80000], 32);
    let initval = b.int(32, IntFormat::Any);
    b.syscall(
        "eventfd2",
        "eventfd2",
        &[
            Field::new("initval", initval),
            Field::new("flags", efd_flags),
        ],
        Some(event_fd),
    );
    b.syscall(
        "write$eventfd",
        "write",
        &[
            Field::new("fd", event_in),
            Field::new("value", small_blob_in),
            Field::new("count", size64),
        ],
        None,
    );

    // ---- Timers ------------------------------------------------------------------
    let clockid = b.int_enum(&[0, 1, 4, 7, 9], 32);
    let sigevent = {
        let notify = b.int_enum(&[0, 1, 2, 4], 32);
        let signo = b.int_range(0, 64, 32);
        let value = size64;
        b.strukt(
            "sigevent",
            vec![
                Field::new("value", value),
                Field::new("signo", signo),
                Field::new("notify", notify),
            ],
        )
    };
    let sev_ptr = b.ptr_opt(sigevent);
    b.syscall(
        "timer_create",
        "timer_create",
        &[Field::new("clockid", clockid), Field::new("sevp", sev_ptr)],
        Some(timer_id),
    );
    let timespec = {
        let sec = b.int_enum(&[0, 1, 10, 0x7fff_ffff], 64);
        let nsec = b.int_enum(&[0, 1, 999_999_999, u64::MAX], 64);
        b.strukt(
            "timespec",
            vec![Field::new("sec", sec), Field::new("nsec", nsec)],
        )
    };
    let itimerspec = {
        b.strukt(
            "itimerspec",
            vec![
                Field::new("interval", timespec),
                Field::new("value", timespec),
            ],
        )
    };
    let its_ptr = b.ptr_in(itimerspec);
    let tsettime_fl = b.flags("timer_settime_flags", &[0x0, 0x1], 32);
    b.syscall(
        "timer_settime",
        "timer_settime",
        &[
            Field::new("timer", timer_in),
            Field::new("flags", tsettime_fl),
            Field::new("new", its_ptr),
        ],
        None,
    );
    b.syscall(
        "timer_delete",
        "timer_delete",
        &[Field::new("timer", timer_in)],
        None,
    );
    let ts_ptr = b.ptr_in(timespec);
    b.syscall("nanosleep", "nanosleep", &[Field::new("req", ts_ptr)], None);

    // ---- SCSI / ATA ioctls (the §5.3.2 story) ---------------------------------
    {
        let scsi_name = b.string(&["/dev/sg0", "/dev/sda", "/dev/sr0"]);
        let scsi_ptr = b.ptr_in(scsi_name);
        let oflags = b.flags("scsi_open_flags", &[0x0, 0x2, 0x800], 32);
        b.syscall(
            "openat$scsi",
            "openat",
            &[
                Field::new("dirfd", dirfd_enum),
                Field::new("dev", scsi_ptr),
                Field::new("flags", oflags),
            ],
            Some(scsi_fd),
        );
        // The ATA-16 pass-through CDB: opcode, protocol, flags, command.
        let ata16_cdb = {
            let opcode = b.constant(ATA_16, 8);
            let protocol = b.int_enum(ATA_PROTOCOLS, 8);
            let tflags = b.flags("ata_tf_flags", &[0x0, 0x1, 0x2, 0x4, 0x20], 8);
            let command = b.int_enum(ATA_COMMANDS, 8);
            let sector = b.int(32, IntFormat::Any);
            b.strukt(
                "ata16_cdb",
                vec![
                    Field::new("opcode", opcode),
                    Field::new("protocol", protocol),
                    Field::new("tf_flags", tflags),
                    Field::new("command", command),
                    Field::new("sector", sector),
                ],
            )
        };
        let tur_cdb = {
            let opcode = b.constant(0x00, 8);
            let pad = b.int_range(0, 255, 8);
            b.strukt(
                "test_unit_ready_cdb",
                vec![Field::new("opcode", opcode), Field::new("pad", pad)],
            )
        };
        let inquiry_cdb = {
            let opcode = b.constant(0x12, 8);
            let evpd = b.int_range(0, 1, 8);
            let page = b.int_range(0, 255, 8);
            let alloc_len = b.int(16, IntFormat::Any);
            b.strukt(
                "inquiry_cdb",
                vec![
                    Field::new("opcode", opcode),
                    Field::new("evpd", evpd),
                    Field::new("page", page),
                    Field::new("alloc_len", alloc_len),
                ],
            )
        };
        let cdb_union = b.union(
            "scsi_cdb",
            vec![
                Field::new("ata16", ata16_cdb),
                Field::new("tur", tur_cdb),
                Field::new("inquiry", inquiry_cdb),
            ],
        );
        let scsi_hdr = {
            let inlen = b.int(32, IntFormat::Any);
            let outlen = b.int(32, IntFormat::Any);
            b.strukt(
                "scsi_ioctl_command",
                vec![
                    Field::new("inlen", inlen),
                    Field::new("outlen", outlen),
                    Field::new("cdb", cdb_union),
                ],
            )
        };
        let hdr_ptr = b.ptr_in(scsi_hdr);
        let cmd_const = b.constant(SCSI_IOCTL_SEND_COMMAND, 32);
        b.syscall(
            "ioctl$scsi_send_command",
            "ioctl",
            &[
                Field::new("fd", scsi_in),
                Field::new("cmd", cmd_const),
                Field::new("arg", hdr_ptr),
            ],
            None,
        );
        let sgio_hdr = {
            let iface = b.constant(0x53, 32);
            let dxfer_dir = b.int_enum(&[u64::MAX, 0xffff_fffe, 0xffff_fffd, 0xffff_fffb], 32);
            let cdb_len = b.int_range(0, 32, 8);
            let dxfer_len = b.int(32, IntFormat::Any);
            let cdb_ptr = b.ptr_in(cdb_union);
            let tmo = b.int_enum(&[0, 1000, 60000], 32);
            b.strukt(
                "sg_io_hdr",
                vec![
                    Field::new("interface_id", iface),
                    Field::new("dxfer_direction", dxfer_dir),
                    Field::new("cmd_len", cdb_len),
                    Field::new("dxfer_len", dxfer_len),
                    Field::new("cmdp", cdb_ptr),
                    Field::new("timeout", tmo),
                ],
            )
        };
        let sgio_ptr = b.ptr_in(sgio_hdr);
        let sg_cmd = b.constant(SG_IO, 32);
        b.syscall(
            "ioctl$sg_io",
            "ioctl",
            &[
                Field::new("fd", scsi_in),
                Field::new("cmd", sg_cmd),
                Field::new("arg", sgio_ptr),
            ],
            None,
        );
    }

    // ---- Generic ioctls ----------------------------------------------------------
    for (name, cmd) in [
        ("ioctl$fionbio", 0x5421u64),
        ("ioctl$fioclex", 0x5451),
        ("ioctl$fionread", 0x541b),
    ] {
        let c = b.constant(cmd, 32);
        let argp = {
            let v = b.int(32, IntFormat::Any);
            let s = b.strukt("int_arg", vec![Field::new("value", v)]);
            b.ptr_in(s)
        };
        b.syscall(
            name,
            "ioctl",
            &[
                Field::new("fd", fd_in),
                Field::new("cmd", c),
                Field::new("arg", argp),
            ],
            None,
        );
    }

    // ---- io_uring (simulated) ------------------------------------------------------
    {
        let entries = b.int_enum(&[0, 1, 8, 64, 4096, 0x10000], 32);
        let uring_params = {
            let sq_thread_cpu = b.int_range(0, 64, 32);
            let sq_thread_idle = b.int(32, IntFormat::Any);
            let flags = b.flags(
                "uring_setup_flags",
                &[0x0, 0x1, 0x2, 0x4, 0x8, 0x10, 0x20, 0x40],
                32,
            );
            b.strukt(
                "io_uring_params",
                vec![
                    Field::new("flags", flags),
                    Field::new("sq_thread_cpu", sq_thread_cpu),
                    Field::new("sq_thread_idle", sq_thread_idle),
                ],
            )
        };
        let params_ptr = b.ptr_in(uring_params);
        b.syscall(
            "io_uring_setup",
            "io_uring_setup",
            &[
                Field::new("entries", entries),
                Field::new("params", params_ptr),
            ],
            Some(uring_fd),
        );
        let to_submit = b.int_range(0, 128, 32);
        let min_complete = b.int_range(0, 128, 32);
        let enter_flags = b.flags("uring_enter_flags", &[0x0, 0x1, 0x2, 0x4], 32);
        b.syscall(
            "io_uring_enter",
            "io_uring_enter",
            &[
                Field::new("fd", uring_in),
                Field::new("to_submit", to_submit),
                Field::new("min_complete", min_complete),
                Field::new("flags", enter_flags),
            ],
            None,
        );
        let reg_op = b.int_enum(&[0, 1, 2, 3, 4, 9, 10], 32);
        b.syscall(
            "io_uring_register",
            "io_uring_register",
            &[
                Field::new("fd", uring_in),
                Field::new("op", reg_op),
                Field::new("arg", small_blob_in),
                Field::new("nr_args", size32),
            ],
            None,
        );
    }

    // ---- watch_queue / keyctl (Table 5 flavour) ----------------------------------
    {
        let wq_flags = b.flags("pipe_watch_flags", &[0x80, 0x800], 32);
        b.syscall(
            "pipe2$watch_queue",
            "pipe2",
            &[Field::new("flags", wq_flags)],
            Some(watch_fd),
        );
        let ioc_watch_queue = b.constant(0x5760, 32);
        let qsize = b.int_enum(&[0, 1, 8, 256, 512], 32);
        b.syscall(
            "ioctl$watch_queue_set_size",
            "ioctl",
            &[
                Field::new("fd", watch_in),
                Field::new("cmd", ioc_watch_queue),
                Field::new("size", qsize),
            ],
            None,
        );
        let keyspec = b.int_enum(&[0xffff_fffe, 0xffff_fffd, 0xffff_fffc], 32);
        let ktype = b.string(&["keyring", "user", "logon", "big_key"]);
        let ktype_ptr = b.ptr_in(ktype);
        let desc = b.string(&["syz", "fuzz", "snowplow"]);
        let desc_ptr = b.ptr_in(desc);
        b.syscall(
            "add_key",
            "add_key",
            &[
                Field::new("type", ktype_ptr),
                Field::new("desc", desc_ptr),
                Field::new("payload", small_blob_in),
                Field::new("plen", size64),
                Field::new("keyring", keyspec),
            ],
            Some(key_id),
        );
        let keyctl_watch = b.constant(32, 32);
        b.syscall(
            "keyctl$watch_key",
            "keyctl",
            &[
                Field::new("cmd", keyctl_watch),
                Field::new("key", key_in),
                Field::new("watch_fd", watch_in),
                Field::new("watch_id", size32),
            ],
            None,
        );
    }

    // ---- Misc ----------------------------------------------------------------------
    let futex_op = b.int_enum(&[0, 1, 2, 3, 4, 5, 6, 7, 9, 10], 32);
    let uaddr = {
        let v = b.int(32, IntFormat::Any);
        let s = b.strukt("futex_word", vec![Field::new("value", v)]);
        b.ptr_in(s)
    };
    b.syscall(
        "futex",
        "futex",
        &[
            Field::new("uaddr", uaddr),
            Field::new("op", futex_op),
            Field::new("val", size32),
        ],
        None,
    );
    let prctl_op = b.int_enum(&[1, 3, 4, 15, 22, 23, 38, 59], 32);
    b.syscall(
        "prctl",
        "prctl",
        &[
            Field::new("option", prctl_op),
            Field::new("arg2", size64),
            Field::new("arg3", size64),
        ],
        None,
    );
    let rlimit_res = b.int_enum(&[0, 1, 2, 3, 4, 5, 6, 7, 9, 13], 32);
    let rlim = {
        let cur = size64;
        let max = size64;
        b.strukt(
            "rlimit",
            vec![Field::new("cur", cur), Field::new("max", max)],
        )
    };
    let rlim_ptr = b.ptr_in(rlim);
    b.syscall(
        "setrlimit",
        "setrlimit",
        &[
            Field::new("resource", rlimit_res),
            Field::new("rlim", rlim_ptr),
        ],
        None,
    );
    b.syscall("sched_yield", "sched_yield", &[], None);
    let sigmask = b.int(64, IntFormat::Any);
    let sig_how = b.int_enum(&[0, 1, 2], 32);
    let mask_ptr = {
        let s = b.strukt("sigset", vec![Field::new("mask", sigmask)]);
        b.ptr_in(s)
    };
    b.syscall(
        "rt_sigprocmask",
        "rt_sigprocmask",
        &[Field::new("how", sig_how), Field::new("set", mask_ptr)],
        None,
    );

    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_has_expected_scale() {
        let reg = linux_sim();
        assert!(
            reg.syscall_count() >= 60,
            "expected >= 60 variants, got {}",
            reg.syscall_count()
        );
        assert!(reg.resource_count() >= 10);
    }

    #[test]
    fn all_names_unique_and_resolvable() {
        let reg = linux_sim();
        for id in reg.syscall_ids() {
            let def = reg.syscall(id);
            assert_eq!(reg.syscall_by_name(def.name), Some(id));
        }
    }

    #[test]
    fn deep_nesting_present() {
        let reg = linux_sim();
        let sendmsg = reg.syscall_by_name("sendmsg$inet").unwrap();
        let paths = reg.enumerate_paths(sendmsg);
        // msghdr + iovec array + sockaddr gives well over a dozen paths.
        assert!(paths.len() > 15, "got {} paths", paths.len());
        let max_depth = paths.iter().map(|(p, _)| p.len()).max().unwrap();
        assert!(max_depth >= 5, "max depth {max_depth}");
    }

    #[test]
    fn every_in_resource_has_a_producer() {
        let reg = linux_sim();
        for id in reg.syscall_ids() {
            for (path, ty) in reg.enumerate_paths(id) {
                if let snowplow_ty @ crate::types::Type::Resource { kind, dir } = reg.ty(ty) {
                    let _ = snowplow_ty;
                    if dir.is_in() {
                        assert!(
                            !reg.producers_of(*kind).is_empty(),
                            "resource {} consumed at {}:{path} has no producer",
                            reg.resource(*kind).name,
                            reg.syscall(id).name,
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn determinism_across_builds() {
        let a = linux_sim();
        let c = linux_sim();
        assert_eq!(a.syscall_count(), c.syscall_count());
        assert_eq!(a.type_count(), c.type_count());
        for id in a.syscall_ids() {
            assert_eq!(a.syscall(id).name, c.syscall(id).name);
        }
    }
}
