//! The description registry: an arena of types plus the set of syscall
//! variants and resource kinds that make up a kernel's user-space interface.

use std::collections::HashMap;

use crate::path::{ArgPath, PathSegment};
use crate::types::{Field, Type, TypeId};

/// Index of a syscall variant in the registry.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SyscallId(pub u32);

impl SyscallId {
    /// Returns the registry index as `usize`.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Index of a resource kind (e.g. `fd`, `sock`) in the registry.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ResourceId(pub u32);

impl ResourceId {
    /// Returns the registry index as `usize`.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A kernel resource kind. Resources connect calls: a call with an `Out`
/// resource produces a value that later calls with matching `In` resources
/// consume (Syzkaller's `r0 = open(...); read(r0, ...)` pattern).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ResourceDef {
    /// Resource kind name (`fd`, `sock`, ...).
    pub name: &'static str,
    /// Values that may be used when no producer is available (Syzkaller's
    /// special values, e.g. `-1` or `AT_FDCWD`).
    pub special_values: Vec<u64>,
}

/// One syscall variant (Syzlang's `call$variant`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SyscallDef {
    /// Full variant name, e.g. `ioctl$scsi_send_command`.
    pub name: &'static str,
    /// Base call group, e.g. `ioctl`. Variants of one group share a kernel
    /// entry point.
    pub group: &'static str,
    /// Syscall number used by the simulated kernel's dispatch table.
    pub nr: u32,
    /// Top-level arguments.
    pub args: Vec<Field>,
    /// Resource kind produced by the call's return value, if any.
    pub ret: Option<ResourceId>,
}

/// The full description set for one kernel interface.
///
/// Built once via [`RegistryBuilder`](crate::RegistryBuilder) and then
/// shared immutably by the program generator, the mutation engine, the
/// simulated kernel, and the model's graph builder.
#[derive(Debug, Default)]
pub struct Registry {
    pub(crate) types: Vec<Type>,
    pub(crate) type_dedup: HashMap<Type, TypeId>,
    pub(crate) syscalls: Vec<SyscallDef>,
    pub(crate) resources: Vec<ResourceDef>,
    pub(crate) by_name: HashMap<&'static str, SyscallId>,
}

impl Registry {
    /// Looks up a type by id.
    ///
    /// # Panics
    /// Panics if `id` was not produced by this registry.
    #[inline]
    pub fn ty(&self, id: TypeId) -> &Type {
        &self.types[id.index()]
    }

    /// Looks up a syscall definition by id.
    #[inline]
    pub fn syscall(&self, id: SyscallId) -> &SyscallDef {
        &self.syscalls[id.index()]
    }

    /// Looks up a resource definition by id.
    #[inline]
    pub fn resource(&self, id: ResourceId) -> &ResourceDef {
        &self.resources[id.index()]
    }

    /// Number of syscall variants described.
    pub fn syscall_count(&self) -> usize {
        self.syscalls.len()
    }

    /// Number of resource kinds described.
    pub fn resource_count(&self) -> usize {
        self.resources.len()
    }

    /// Number of distinct types in the arena.
    pub fn type_count(&self) -> usize {
        self.types.len()
    }

    /// Iterates over all syscall ids in definition order.
    pub fn syscall_ids(&self) -> impl Iterator<Item = SyscallId> + '_ {
        (0..self.syscalls.len() as u32).map(SyscallId)
    }

    /// Finds a syscall variant by its full name.
    pub fn syscall_by_name(&self, name: &str) -> Option<SyscallId> {
        self.by_name.get(name).copied()
    }

    /// All syscall variants that produce resource `kind`.
    pub fn producers_of(&self, kind: ResourceId) -> Vec<SyscallId> {
        self.syscall_ids()
            .filter(|&id| self.syscall(id).ret == Some(kind))
            .collect()
    }

    /// Resolves a description-level path to the type it names.
    ///
    /// Array elements resolve through any `Elem(_)` index (all elements
    /// share a type); union segments resolve through the recorded variant.
    pub fn type_at(&self, call: SyscallId, path: &ArgPath) -> Option<TypeId> {
        let def = self.syscall(call);
        let mut segs = path.segments().iter();
        let first = segs.next()?;
        let mut cur = match first {
            PathSegment::Arg(i) => def.args.get(*i as usize)?.ty,
            _ => return None,
        };
        for seg in segs {
            cur = match (seg, self.ty(cur)) {
                (PathSegment::Deref, Type::Ptr { elem, .. }) => *elem,
                (PathSegment::Field(i), Type::Struct { fields, .. }) => fields.get(*i as usize)?.ty,
                (PathSegment::Elem(_), Type::Array { elem, .. }) => *elem,
                (PathSegment::Variant(i), Type::Union { variants, .. }) => {
                    variants.get(*i as usize)?.ty
                }
                _ => return None,
            };
        }
        Some(cur)
    }

    /// Enumerates every description-level path of a call, outermost-first,
    /// pairing each with its type. Arrays contribute a single canonical
    /// `Elem(0)` path; unions contribute one path per variant.
    ///
    /// This is the *description* search space; the per-program search space
    /// (which expands actual array lengths and picks actual union variants)
    /// is enumerated by `snowplow-prog`.
    pub fn enumerate_paths(&self, call: SyscallId) -> Vec<(ArgPath, TypeId)> {
        let def = self.syscall(call);
        let mut out = Vec::new();
        for (i, field) in def.args.iter().enumerate() {
            self.walk(field.ty, ArgPath::arg(i), &mut out, 0);
        }
        out
    }

    fn walk(&self, ty: TypeId, path: ArgPath, out: &mut Vec<(ArgPath, TypeId)>, depth: u32) {
        // Descriptions are finite trees, but guard against pathological
        // nesting all the same.
        if depth > 16 {
            return;
        }
        out.push((path.clone(), ty));
        match self.ty(ty) {
            Type::Ptr { elem, .. } => {
                self.walk(*elem, path.child(PathSegment::Deref), out, depth + 1);
            }
            Type::Struct { fields, .. } => {
                for (i, f) in fields.iter().enumerate() {
                    self.walk(
                        f.ty,
                        path.child(PathSegment::Field(i as u16)),
                        out,
                        depth + 1,
                    );
                }
            }
            Type::Array { elem, .. } => {
                self.walk(*elem, path.child(PathSegment::Elem(0)), out, depth + 1);
            }
            Type::Union { variants, .. } => {
                for (i, v) in variants.iter().enumerate() {
                    self.walk(
                        v.ty,
                        path.child(PathSegment::Variant(i as u16)),
                        out,
                        depth + 1,
                    );
                }
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::builder::RegistryBuilder;
    use crate::types::{Dir, Field, IntFormat};

    use super::*;

    fn tiny() -> Registry {
        let mut b = RegistryBuilder::new();
        let fd = b.resource("fd", &[u64::MAX]);
        let flags = b.flags("open_flags", &[0x1, 0x2, 0x40], 32);
        let fname = b.filename();
        let fname_ptr = b.ptr_in(fname);
        let mode = b.int_range(0, 0o777, 16);
        b.syscall(
            "open",
            "open",
            &[
                Field::new("file", fname_ptr),
                Field::new("flags", flags),
                Field::new("mode", mode),
            ],
            Some(fd),
        );
        let fd_in = b.res_in(fd);
        let buf = b.blob(1, 64);
        let buf_ptr = b.ptr_out(buf);
        let len = b.int(32, IntFormat::Any);
        b.syscall(
            "read",
            "read",
            &[
                Field::new("fd", fd_in),
                Field {
                    name: "buf",
                    ty: buf_ptr,
                    dir: Dir::Out,
                },
                Field::new("count", len),
            ],
            None,
        );
        b.build()
    }

    #[test]
    fn lookup_by_name_and_producers() {
        let reg = tiny();
        let open = reg.syscall_by_name("open").unwrap();
        assert_eq!(reg.syscall(open).name, "open");
        let fd = ResourceId(0);
        assert_eq!(reg.producers_of(fd), vec![open]);
    }

    #[test]
    fn enumerate_paths_includes_nested() {
        let reg = tiny();
        let open = reg.syscall_by_name("open").unwrap();
        let paths = reg.enumerate_paths(open);
        // 3 top-level args + the filename behind the pointer.
        assert_eq!(paths.len(), 4);
        let rendered: Vec<String> = paths.iter().map(|(p, _)| p.to_string()).collect();
        assert!(rendered.contains(&"a0.*".to_string()), "{rendered:?}");
    }

    #[test]
    fn type_at_resolves_paths() {
        let reg = tiny();
        let open = reg.syscall_by_name("open").unwrap();
        for (path, ty) in reg.enumerate_paths(open) {
            assert_eq!(reg.type_at(open, &path), Some(ty), "path {path}");
        }
        assert_eq!(reg.type_at(open, &ArgPath::arg(9)), None);
    }

    #[test]
    fn type_arena_dedups() {
        let mut b = RegistryBuilder::new();
        let a = b.int(32, IntFormat::Any);
        let c = b.int(32, IntFormat::Any);
        assert_eq!(a, c);
        let d = b.int(64, IntFormat::Any);
        assert_ne!(a, d);
    }
}
