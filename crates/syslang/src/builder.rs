//! Fluent construction of a [`Registry`].
//!
//! The builder interns types (structurally identical descriptions share one
//! [`TypeId`]) and assigns syscall numbers in definition order.

use crate::registry::{Registry, ResourceDef, ResourceId, SyscallDef, SyscallId};
use crate::types::{BufferKind, Dir, Field, IntFormat, Type, TypeId};

/// Builds a [`Registry`] incrementally.
///
/// ```
/// use snowplow_syslang::{RegistryBuilder, Field};
///
/// let mut b = RegistryBuilder::new();
/// let fd = b.resource("fd", &[u64::MAX]);
/// let flags = b.flags("oflags", &[0x1, 0x2], 32);
/// b.syscall("open", "open", &[Field::new("flags", flags)], Some(fd));
/// let reg = b.build();
/// assert_eq!(reg.syscall_count(), 1);
/// ```
#[derive(Debug, Default)]
pub struct RegistryBuilder {
    reg: Registry,
}

impl RegistryBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        RegistryBuilder::default()
    }

    /// Interns `ty`, returning its id (existing id if structurally equal).
    pub fn intern(&mut self, ty: Type) -> TypeId {
        if let Some(&id) = self.reg.type_dedup.get(&ty) {
            return id;
        }
        let id = TypeId(self.reg.types.len() as u32);
        self.reg.type_dedup.insert(ty.clone(), id);
        self.reg.types.push(ty);
        id
    }

    /// An integer of `bits` width with the given format.
    pub fn int(&mut self, bits: u8, format: IntFormat) -> TypeId {
        self.intern(Type::Int { bits, format })
    }

    /// An integer constrained to `[lo, hi]`.
    pub fn int_range(&mut self, lo: u64, hi: u64, bits: u8) -> TypeId {
        self.int(bits, IntFormat::Range { lo, hi })
    }

    /// An integer drawn from an explicit value list (enum-like).
    pub fn int_enum(&mut self, values: &[u64], bits: u8) -> TypeId {
        self.int(
            bits,
            IntFormat::Enum {
                values: values.to_vec(),
            },
        )
    }

    /// A named flag word.
    pub fn flags(&mut self, name: &'static str, values: &[u64], bits: u8) -> TypeId {
        self.intern(Type::Flags {
            name,
            values: values.to_vec(),
            bits,
        })
    }

    /// A fixed constant.
    pub fn constant(&mut self, value: u64, bits: u8) -> TypeId {
        self.intern(Type::Const { value, bits })
    }

    /// An `in` pointer to `elem`.
    pub fn ptr_in(&mut self, elem: TypeId) -> TypeId {
        self.intern(Type::Ptr {
            dir: Dir::In,
            elem,
            optional: false,
        })
    }

    /// An `out` pointer to `elem`.
    pub fn ptr_out(&mut self, elem: TypeId) -> TypeId {
        self.intern(Type::Ptr {
            dir: Dir::Out,
            elem,
            optional: false,
        })
    }

    /// An optional (possibly NULL) `in` pointer to `elem`.
    pub fn ptr_opt(&mut self, elem: TypeId) -> TypeId {
        self.intern(Type::Ptr {
            dir: Dir::In,
            elem,
            optional: true,
        })
    }

    /// An opaque byte blob with an inclusive size range.
    pub fn blob(&mut self, min_len: usize, max_len: usize) -> TypeId {
        self.intern(Type::Buffer {
            kind: BufferKind::Blob { min_len, max_len },
        })
    }

    /// A string drawn from a fixed dictionary.
    pub fn string(&mut self, values: &[&'static str]) -> TypeId {
        self.intern(Type::Buffer {
            kind: BufferKind::String {
                values: values.to_vec(),
            },
        })
    }

    /// A filename in the test working directory.
    pub fn filename(&mut self) -> TypeId {
        self.intern(Type::Buffer {
            kind: BufferKind::Filename,
        })
    }

    /// A variable-length array.
    pub fn array(&mut self, elem: TypeId, min_len: usize, max_len: usize) -> TypeId {
        self.intern(Type::Array {
            elem,
            min_len,
            max_len,
        })
    }

    /// A struct with the given fields.
    pub fn strukt(&mut self, name: &'static str, fields: Vec<Field>) -> TypeId {
        self.intern(Type::Struct { name, fields })
    }

    /// A union with the given variants.
    pub fn union(&mut self, name: &'static str, variants: Vec<Field>) -> TypeId {
        self.intern(Type::Union { name, variants })
    }

    /// The byte length of the sibling field at index `target`.
    pub fn len_of(&mut self, target: usize, bits: u8) -> TypeId {
        self.intern(Type::Len { target, bits })
    }

    /// Declares a resource kind.
    pub fn resource(&mut self, name: &'static str, special_values: &[u64]) -> ResourceId {
        let id = ResourceId(self.reg.resources.len() as u32);
        self.reg.resources.push(ResourceDef {
            name,
            special_values: special_values.to_vec(),
        });
        id
    }

    /// An `in` resource argument of the given kind.
    pub fn res_in(&mut self, kind: ResourceId) -> TypeId {
        self.intern(Type::Resource { kind, dir: Dir::In })
    }

    /// Declares a syscall variant. `name` must be unique; `group` is the
    /// base call name shared by variants (e.g. `ioctl`).
    ///
    /// # Panics
    /// Panics if `name` was already declared.
    pub fn syscall(
        &mut self,
        name: &'static str,
        group: &'static str,
        args: &[Field],
        ret: Option<ResourceId>,
    ) -> SyscallId {
        assert!(
            !self.reg.by_name.contains_key(name),
            "duplicate syscall variant {name}"
        );
        let id = SyscallId(self.reg.syscalls.len() as u32);
        self.reg.syscalls.push(SyscallDef {
            name,
            group,
            nr: id.0,
            args: args.to_vec(),
            ret,
        });
        self.reg.by_name.insert(name, id);
        id
    }

    /// Finalizes the registry.
    pub fn build(self) -> Registry {
        self.reg
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[should_panic(expected = "duplicate syscall variant")]
    fn duplicate_names_rejected() {
        let mut b = RegistryBuilder::new();
        b.syscall("close", "close", &[], None);
        b.syscall("close", "close", &[], None);
    }

    #[test]
    fn syscall_numbers_follow_definition_order() {
        let mut b = RegistryBuilder::new();
        let a = b.syscall("a", "a", &[], None);
        let c = b.syscall("b", "b", &[], None);
        assert_eq!(a, SyscallId(0));
        assert_eq!(c, SyscallId(1));
        let reg = b.build();
        assert_eq!(reg.syscall(a).nr, 0);
        assert_eq!(reg.syscall(c).nr, 1);
    }
}
