//! Syscall description DSL for the Snowplow simulated kernel.
//!
//! This crate plays the role that Syzkaller's *Syzlang* descriptions play in
//! the original Snowplow system: it defines the type system used to describe
//! system-call interfaces (integers, flag words, pointers, buffers, nested
//! structs, unions, length fields, and kernel resources), the registry that
//! holds the full set of syscall variants, and the path addressing scheme
//! used to name individual (possibly deeply nested) arguments.
//!
//! The crate is purely descriptive: actual test programs live in
//! `snowplow-prog` and the simulated kernel that interprets them lives in
//! `snowplow-kernel`.
//!
//! # Quick tour
//!
//! ```
//! use snowplow_syslang::builtin;
//!
//! let reg = builtin::linux_sim();
//! let open = reg.syscall_by_name("open").expect("open is described");
//! assert_eq!(reg.syscall(open).args.len(), 3);
//! // Every argument of every call can be enumerated as a path:
//! let paths = reg.enumerate_paths(open);
//! assert!(paths.len() >= 3);
//! ```

pub mod builder;
pub mod builtin;
pub mod path;
pub mod registry;
pub mod types;

pub use builder::RegistryBuilder;
pub use path::{ArgPath, PathSegment};
pub use registry::{Registry, ResourceDef, ResourceId, SyscallDef, SyscallId};
pub use types::{BufferKind, Dir, Field, IntFormat, Type, TypeId};
