//! Static analyses over the kernel CFG.
//!
//! The paper recovers the kernel CFG with Angr and runs classic static
//! analyses over it; this module provides the same layer for the
//! simulated kernel:
//!
//! * [`branch_status`] — constant propagation over branch
//!   [`Predicate`]s using only the syscall description: a branch can be
//!   proven statically *never taken* (no shape-valid program satisfies
//!   it) or *always taken* (every lint-clean program satisfies it).
//! * [`statically_dead_blocks`] — blocks unreachable once proven branch
//!   directions are pruned. The directed fuzzer uses this to reject
//!   impossible targets in O(CFG) time, and the campaign filters these
//!   blocks out of its frontier targets before querying PMM.
//! * [`reachable_blocks`] — plain all-edges reachability from handler
//!   entries (unreachable-block detection is its complement).
//! * [`dominators`] / [`post_dominators`] — iterative dominator trees
//!   (Cooper–Harvey–Kennedy) over the whole-kernel CFG.

use std::collections::{HashSet, VecDeque};

use snowplow_kernel::{BasicBlock, BlockId, Kernel, Predicate, Terminator};
use snowplow_syslang::{ArgPath, BufferKind, IntFormat, PathSegment, Registry, SyscallId, Type};

/// What constant propagation proves about one conditional branch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BranchStatus {
    /// Every lint-clean program that reaches the branch takes it.
    AlwaysTaken,
    /// No shape-valid program can take the branch.
    NeverTaken,
    /// Not statically decidable from the description alone.
    Unknown,
}

fn mask(bits: u8) -> u64 {
    if bits >= 64 {
        u64::MAX
    } else {
        (1u64 << bits) - 1
    }
}

/// Whether `path` resolves to a concrete value in *every* shape-valid
/// program for `handler`: no hop through an optional (possibly-NULL)
/// pointer, no array element past the guaranteed minimum length, and no
/// union variant that is not forced (a multi-variant union may have a
/// different active arm).
fn path_always_resolves(reg: &Registry, handler: SyscallId, path: &ArgPath) -> bool {
    let def = reg.syscall(handler);
    let segs = path.segments();
    let Some(PathSegment::Arg(i)) = segs.first() else {
        return false;
    };
    let Some(field) = def.args.get(*i as usize) else {
        return false;
    };
    let mut ty = field.ty;
    for seg in &segs[1..] {
        match (reg.ty(ty), seg) {
            (Type::Ptr { elem, optional, .. }, PathSegment::Deref) => {
                if *optional {
                    return false;
                }
                ty = *elem;
            }
            (Type::Struct { fields, .. }, PathSegment::Field(f)) => match fields.get(*f as usize) {
                Some(field) => ty = field.ty,
                None => return false,
            },
            (Type::Array { elem, min_len, .. }, PathSegment::Elem(e))
                if (*e as usize) < *min_len =>
            {
                ty = *elem;
            }
            (Type::Union { variants, .. }, PathSegment::Variant(v))
                if variants.len() == 1 && *v == 0 =>
            {
                ty = variants[0].ty;
            }
            _ => return false,
        }
    }
    true
}

/// Constant propagation for one branch predicate of `handler`.
///
/// Soundness contract:
///
/// * [`BranchStatus::NeverTaken`] holds for **all shape-valid** programs
///   (anything `Prog::validate` accepts): the predicate evaluates to
///   `false` no matter the argument values. Predicates over paths the
///   description cannot resolve are never taken, because
///   `Predicate::eval` requires the path to resolve to a matching view.
/// * [`BranchStatus::AlwaysTaken`] additionally assumes the program is
///   **lint-clean** ([`crate::lint`] passes — which covers everything
///   the generator and mutator produce, i.e. everything the fuzzer
///   executes) and that the path provably resolves in every program.
pub fn branch_status(reg: &Registry, handler: SyscallId, pred: &Predicate) -> BranchStatus {
    use BranchStatus::{AlwaysTaken, NeverTaken, Unknown};
    // `AlwaysTaken` claims must additionally survive structural
    // non-resolution (an unresolved path evaluates to false).
    let always_if = |resolvable: bool| if resolvable { AlwaysTaken } else { Unknown };
    let ty_at = |path: &ArgPath| reg.type_at(handler, path).map(|id| reg.ty(id));
    match pred {
        Predicate::ArgEq { path, value } => {
            let Some(ty) = ty_at(path) else {
                return NeverTaken;
            };
            match ty {
                Type::Const { value: c, .. } => {
                    if c == value {
                        always_if(path_always_resolves(reg, handler, path))
                    } else {
                        NeverTaken
                    }
                }
                Type::Int {
                    format: IntFormat::Range { lo, hi },
                    ..
                } => {
                    if value < lo || value > hi {
                        NeverTaken
                    } else if lo == hi && path_always_resolves(reg, handler, path) {
                        AlwaysTaken
                    } else {
                        Unknown
                    }
                }
                Type::Int { bits, .. } | Type::Flags { bits, .. } => {
                    if *value > mask(*bits) {
                        NeverTaken
                    } else {
                        Unknown
                    }
                }
                Type::Len { .. } => Unknown,
                // A non-scalar view never compares equal to an integer.
                _ => NeverTaken,
            }
        }
        Predicate::ArgMaskEq {
            path,
            mask: m,
            value,
        } => {
            let Some(ty) = ty_at(path) else {
                return NeverTaken;
            };
            if !matches!(
                ty,
                Type::Int { .. } | Type::Flags { .. } | Type::Const { .. } | Type::Len { .. }
            ) {
                return NeverTaken;
            }
            // Bits of `value` outside `m` can never survive `& m`.
            if value & !m != 0 {
                return NeverTaken;
            }
            match ty {
                Type::Const { value: c, .. } => {
                    if c & m == *value {
                        always_if(path_always_resolves(reg, handler, path))
                    } else {
                        NeverTaken
                    }
                }
                // Width-masked formats: the stored value never exceeds
                // the declared width.
                Type::Int {
                    bits,
                    format: IntFormat::Any | IntFormat::Enum { .. },
                }
                | Type::Flags { bits, .. } => {
                    let w = mask(*bits);
                    if value & !w != 0 {
                        NeverTaken
                    } else if m & w == 0 {
                        // The tested bits lie wholly above the width, so
                        // the masked value is always zero.
                        if *value == 0 {
                            always_if(path_always_resolves(reg, handler, path))
                        } else {
                            NeverTaken
                        }
                    } else {
                        Unknown
                    }
                }
                _ => Unknown,
            }
        }
        Predicate::ArgInRange { path, lo, hi } => {
            if lo > hi {
                return NeverTaken;
            }
            let Some(ty) = ty_at(path) else {
                return NeverTaken;
            };
            match ty {
                Type::Const { value: c, .. } => {
                    if lo <= c && c <= hi {
                        always_if(path_always_resolves(reg, handler, path))
                    } else {
                        NeverTaken
                    }
                }
                Type::Int {
                    format: IntFormat::Range { lo: rlo, hi: rhi },
                    ..
                } => {
                    if rhi < lo || rlo > hi {
                        NeverTaken
                    } else if lo <= rlo && rhi <= hi && path_always_resolves(reg, handler, path) {
                        AlwaysTaken
                    } else {
                        Unknown
                    }
                }
                Type::Int { bits, .. } | Type::Flags { bits, .. } => {
                    let w = mask(*bits);
                    if *lo > w {
                        NeverTaken
                    } else if *lo == 0 && *hi >= w && path_always_resolves(reg, handler, path) {
                        AlwaysTaken
                    } else {
                        Unknown
                    }
                }
                Type::Len { .. } => Unknown,
                _ => NeverTaken,
            }
        }
        Predicate::DataLenGt { path, len } => {
            let Some(ty) = ty_at(path) else {
                return NeverTaken;
            };
            match ty {
                Type::Buffer {
                    kind: BufferKind::Blob { min_len, .. },
                } => {
                    // Mutation can grow a blob past `max_len` but nothing
                    // ever shrinks one below `min_len`, so only the lower
                    // bound supports a static verdict.
                    if *min_len as u64 > *len {
                        always_if(path_always_resolves(reg, handler, path))
                    } else {
                        Unknown
                    }
                }
                Type::Buffer { .. } => Unknown,
                _ => NeverTaken,
            }
        }
        Predicate::IsNull { path } => match ty_at(path) {
            Some(Type::Ptr { optional: true, .. }) => Unknown,
            // Lint-clean programs never put NULL in a non-optional
            // pointer, and a non-pointer view never matches.
            _ => NeverTaken,
        },
        Predicate::NotNull { path } => match ty_at(path) {
            Some(Type::Ptr { optional: true, .. }) => Unknown,
            Some(Type::Ptr {
                optional: false, ..
            }) => always_if(path_always_resolves(reg, handler, path)),
            _ => NeverTaken,
        },
        Predicate::UnionIs { path, variant } => match ty_at(path) {
            Some(Type::Union { variants, .. }) => {
                if (*variant as usize) >= variants.len() {
                    NeverTaken
                } else if variants.len() == 1 && *variant == 0 {
                    always_if(path_always_resolves(reg, handler, path))
                } else {
                    Unknown
                }
            }
            _ => NeverTaken,
        },
        // Resource liveness and kernel state depend on execution history,
        // which the description alone cannot decide.
        Predicate::ResValid { .. }
        | Predicate::StateCounterGe { .. }
        | Predicate::StateFlag { .. }
        | Predicate::Poisoned => Unknown,
    }
}

fn block_successors(reg: &Registry, block: &BasicBlock, prune_proven: bool) -> Vec<BlockId> {
    match &block.term {
        Terminator::Jump(t) => vec![*t],
        Terminator::Return => Vec::new(),
        Terminator::Branch {
            pred,
            taken,
            fallthrough,
        } => {
            if prune_proven {
                match branch_status(reg, block.handler, pred) {
                    BranchStatus::AlwaysTaken => vec![*taken],
                    BranchStatus::NeverTaken => vec![*fallthrough],
                    BranchStatus::Unknown => vec![*taken, *fallthrough],
                }
            } else {
                vec![*taken, *fallthrough]
            }
        }
    }
}

fn bfs_live(
    reg: &Registry,
    blocks: &[BasicBlock],
    entries: &[BlockId],
    prune_proven: bool,
) -> Vec<bool> {
    let mut live = vec![false; blocks.len()];
    let mut q = VecDeque::new();
    for &e in entries {
        if !live[e.index()] {
            live[e.index()] = true;
            q.push_back(e);
        }
    }
    while let Some(b) = q.pop_front() {
        for s in block_successors(reg, &blocks[b.index()], prune_proven) {
            if !live[s.index()] {
                live[s.index()] = true;
                q.push_back(s);
            }
        }
    }
    live
}

fn handler_entries(kernel: &Kernel) -> Vec<BlockId> {
    kernel.handlers().iter().map(|h| h.entry).collect()
}

/// Blocks unreachable from the given entries once statically-proven
/// branch directions are pruned ([`branch_status`] live-edge BFS).
/// Low-level variant of [`statically_dead_blocks`] for synthetic CFGs.
pub fn statically_dead_blocks_of(
    reg: &Registry,
    blocks: &[BasicBlock],
    entries: &[BlockId],
) -> HashSet<BlockId> {
    bfs_live(reg, blocks, entries, true)
        .iter()
        .enumerate()
        .filter(|(_, live)| !**live)
        .map(|(i, _)| BlockId(i as u32))
        .collect()
}

/// Blocks of `kernel` that no lint-clean program can ever execute:
/// unreachable from every handler entry after pruning statically-proven
/// branch directions. Runs in O(blocks + edges).
pub fn statically_dead_blocks(kernel: &Kernel) -> HashSet<BlockId> {
    statically_dead_blocks_of(kernel.registry(), kernel.blocks(), &handler_entries(kernel))
}

/// Blocks reachable from some handler entry following *all* CFG edges
/// (no predicate pruning). The complement is the set of orphaned blocks
/// no construction path should ever produce.
pub fn reachable_blocks(kernel: &Kernel) -> HashSet<BlockId> {
    bfs_live(
        kernel.registry(),
        kernel.blocks(),
        &handler_entries(kernel),
        false,
    )
    .iter()
    .enumerate()
    .filter(|(_, live)| **live)
    .map(|(i, _)| BlockId(i as u32))
    .collect()
}

/// A (post-)dominator tree over the whole-kernel CFG.
///
/// Built with the iterative Cooper–Harvey–Kennedy algorithm over a
/// virtual root that fans out to every entry (forward analysis: handler
/// entries; post-dominance: `Return` blocks on the reversed graph), so
/// the multi-entry kernel graph needs no per-handler special-casing.
#[derive(Debug, Clone)]
pub struct DomTree {
    /// Immediate dominator per block; `None` for roots and blocks not
    /// reachable in the analysis direction.
    idom: Vec<Option<BlockId>>,
}

impl DomTree {
    /// The immediate dominator of `b` (`None` for roots/unreachable).
    pub fn idom(&self, b: BlockId) -> Option<BlockId> {
        self.idom.get(b.index()).copied().flatten()
    }

    /// Whether `a` dominates `b` (reflexively).
    pub fn dominates(&self, a: BlockId, b: BlockId) -> bool {
        let mut cur = b;
        loop {
            if cur == a {
                return true;
            }
            match self.idom(cur) {
                Some(next) => cur = next,
                None => return false,
            }
        }
    }
}

fn dom_tree(n: usize, entries: &[BlockId], preds: impl Fn(usize) -> Vec<usize>) -> DomTree {
    // Virtual root at index `n`, predecessor of nothing, with every
    // entry as a successor (i.e. the root is a predecessor of entries).
    let root = n;
    let entry_set: HashSet<usize> = entries.iter().map(|b| b.index()).collect();
    let pred_of = |v: usize| -> Vec<usize> {
        let mut p = preds(v);
        if entry_set.contains(&v) {
            p.push(root);
        }
        p
    };
    // Successors (for the RPO walk) are derived lazily from `preds` by
    // the caller side; instead compute RPO with an explicit DFS over the
    // *forward* relation, which we reconstruct by inverting `pred_of`.
    let mut succ: Vec<Vec<usize>> = vec![Vec::new(); n + 1];
    for v in 0..n {
        for p in pred_of(v) {
            succ[p].push(v);
        }
    }
    // Iterative post-order DFS from the virtual root.
    let mut post: Vec<usize> = Vec::with_capacity(n + 1);
    let mut visited = vec![false; n + 1];
    let mut stack: Vec<(usize, usize)> = vec![(root, 0)];
    visited[root] = true;
    while let Some(&mut (v, ref mut i)) = stack.last_mut() {
        if *i < succ[v].len() {
            let next = succ[v][*i];
            *i += 1;
            if !visited[next] {
                visited[next] = true;
                stack.push((next, 0));
            }
        } else {
            post.push(v);
            stack.pop();
        }
    }
    let mut rpo_num = vec![usize::MAX; n + 1];
    let rpo: Vec<usize> = post.into_iter().rev().collect();
    for (i, &v) in rpo.iter().enumerate() {
        rpo_num[v] = i;
    }
    let mut idom: Vec<Option<usize>> = vec![None; n + 1];
    idom[root] = Some(root);
    let intersect = |idom: &[Option<usize>], rpo_num: &[usize], mut a: usize, mut b: usize| {
        while a != b {
            while rpo_num[a] > rpo_num[b] {
                // Invariant: every processed node's idom chain leads to
                // the root, so the walk terminates.
                a = idom[a].expect("processed node has an idom");
            }
            while rpo_num[b] > rpo_num[a] {
                b = idom[b].expect("processed node has an idom");
            }
        }
        a
    };
    let mut changed = true;
    while changed {
        changed = false;
        for &v in rpo.iter().skip(1) {
            let mut new_idom: Option<usize> = None;
            for p in pred_of(v) {
                if idom[p].is_none() {
                    continue;
                }
                new_idom = Some(match new_idom {
                    None => p,
                    Some(cur) => intersect(&idom, &rpo_num, p, cur),
                });
            }
            if new_idom.is_some() && idom[v] != new_idom {
                idom[v] = new_idom;
                changed = true;
            }
        }
    }
    DomTree {
        idom: (0..n)
            .map(|v| match idom[v] {
                Some(d) if d != root => Some(BlockId(d as u32)),
                _ => None,
            })
            .collect(),
    }
}

/// Dominator tree from synthetic blocks and explicit entry points.
pub fn dominators_of(blocks: &[BasicBlock], entries: &[BlockId]) -> DomTree {
    let succ: Vec<Vec<usize>> = blocks
        .iter()
        .map(|b| b.term.successors().map(|s| s.index()).collect())
        .collect();
    let mut pred: Vec<Vec<usize>> = vec![Vec::new(); blocks.len()];
    for (v, ss) in succ.iter().enumerate() {
        for &s in ss {
            pred[s].push(v);
        }
    }
    dom_tree(blocks.len(), entries, move |v| pred[v].clone())
}

/// Post-dominator tree: [`dominators_of`] on the reversed graph with
/// every `Return` block as a root.
pub fn post_dominators_of(blocks: &[BasicBlock]) -> DomTree {
    let mut rev_pred: Vec<Vec<usize>> = vec![Vec::new(); blocks.len()];
    for b in blocks {
        for s in b.term.successors() {
            // Reversed graph: the predecessor relation is the original
            // successor relation.
            rev_pred[b.id.index()].push(s.index());
        }
    }
    let exits: Vec<BlockId> = blocks
        .iter()
        .filter(|b| matches!(b.term, Terminator::Return))
        .map(|b| b.id)
        .collect();
    dom_tree(blocks.len(), &exits, move |v| rev_pred[v].clone())
}

/// Dominator tree of the whole kernel CFG (roots: handler entries).
pub fn dominators(kernel: &Kernel) -> DomTree {
    dominators_of(kernel.blocks(), &handler_entries(kernel))
}

/// Post-dominator tree of the whole kernel CFG (roots: `Return` blocks).
pub fn post_dominators(kernel: &Kernel) -> DomTree {
    post_dominators_of(kernel.blocks())
}

#[cfg(test)]
mod tests {
    use snowplow_kernel::KernelVersion;
    use snowplow_syslang::{Field, RegistryBuilder};

    use super::*;

    fn mk(id: u32, term: Terminator) -> BasicBlock {
        BasicBlock {
            id: BlockId(id),
            handler: SyscallId(0),
            text: Vec::new(),
            effects: Vec::new(),
            crash: None,
            term,
            gate_depth: 0,
        }
    }

    fn branch(pred: Predicate, taken: u32, fallthrough: u32) -> Terminator {
        Terminator::Branch {
            pred,
            taken: BlockId(taken),
            fallthrough: BlockId(fallthrough),
        }
    }

    /// One syscall `f(x: int32[10, 20], p: ptr[opt])` for predicate tests.
    fn test_registry() -> Registry {
        let mut b = RegistryBuilder::new();
        let ranged = b.int_range(10, 20, 32);
        let any16 = b.int(16, IntFormat::Any);
        let blob = b.blob(4, 64);
        let pblob = b.ptr_in(blob);
        let popt = b.ptr_opt(any16);
        b.syscall(
            "f",
            "f",
            &[
                Field::new("x", ranged),
                Field::new("y", any16),
                Field::new("buf", pblob),
                Field::new("maybe", popt),
            ],
            None,
        );
        b.build()
    }

    #[test]
    fn const_prop_on_ranged_ints() {
        let reg = test_registry();
        let f = SyscallId(0);
        let x = ArgPath::arg(0);
        // Value outside the declared range: never taken.
        assert_eq!(
            branch_status(
                &reg,
                f,
                &Predicate::ArgEq {
                    path: x.clone(),
                    value: 99
                }
            ),
            BranchStatus::NeverTaken
        );
        // Value inside the range: undecidable.
        assert_eq!(
            branch_status(
                &reg,
                f,
                &Predicate::ArgEq {
                    path: x.clone(),
                    value: 15
                }
            ),
            BranchStatus::Unknown
        );
        // Range fully covering the declared domain: always taken.
        assert_eq!(
            branch_status(
                &reg,
                f,
                &Predicate::ArgInRange {
                    path: x.clone(),
                    lo: 0,
                    hi: 100
                }
            ),
            BranchStatus::AlwaysTaken
        );
        // Disjoint range: never taken.
        assert_eq!(
            branch_status(
                &reg,
                f,
                &Predicate::ArgInRange {
                    path: x,
                    lo: 30,
                    hi: 40
                }
            ),
            BranchStatus::NeverTaken
        );
    }

    #[test]
    fn const_prop_on_widths_pointers_and_buffers() {
        let reg = test_registry();
        let f = SyscallId(0);
        let y = ArgPath::arg(1);
        // 16-bit value can never exceed its width mask.
        assert_eq!(
            branch_status(
                &reg,
                f,
                &Predicate::ArgEq {
                    path: y.clone(),
                    value: 0x1_0000
                }
            ),
            BranchStatus::NeverTaken
        );
        // Mask entirely above the width: masked value is always zero.
        assert_eq!(
            branch_status(
                &reg,
                f,
                &Predicate::ArgMaskEq {
                    path: y.clone(),
                    mask: 0xff0000,
                    value: 0
                }
            ),
            BranchStatus::AlwaysTaken
        );
        assert_eq!(
            branch_status(
                &reg,
                f,
                &Predicate::ArgMaskEq {
                    path: y,
                    mask: 0xf,
                    value: 0x30
                }
            ),
            BranchStatus::NeverTaken
        );
        // A non-optional pointer is never NULL in a lint-clean program.
        let buf = ArgPath::arg(2);
        assert_eq!(
            branch_status(&reg, f, &Predicate::IsNull { path: buf.clone() }),
            BranchStatus::NeverTaken
        );
        assert_eq!(
            branch_status(&reg, f, &Predicate::NotNull { path: buf.clone() }),
            BranchStatus::AlwaysTaken
        );
        // An optional pointer is undecidable either way.
        let maybe = ArgPath::arg(3);
        assert_eq!(
            branch_status(&reg, f, &Predicate::IsNull { path: maybe }),
            BranchStatus::Unknown
        );
        // Blob minimum length supports a static lower bound…
        let data = buf.child(PathSegment::Deref);
        assert_eq!(
            branch_status(
                &reg,
                f,
                &Predicate::DataLenGt {
                    path: data.clone(),
                    len: 3
                }
            ),
            BranchStatus::AlwaysTaken
        );
        // …but nothing above it (mutation can grow blobs past max_len).
        assert_eq!(
            branch_status(
                &reg,
                f,
                &Predicate::DataLenGt {
                    path: data,
                    len: 100
                }
            ),
            BranchStatus::Unknown
        );
        // A path the description cannot resolve is never satisfied.
        assert_eq!(
            branch_status(
                &reg,
                f,
                &Predicate::ArgEq {
                    path: ArgPath::arg(9),
                    value: 0
                }
            ),
            BranchStatus::NeverTaken
        );
    }

    #[test]
    fn dead_blocks_behind_proven_branches() {
        let reg = test_registry();
        // 0 --[x == 99, impossible]--> 1 (dead), else 2 -> Return.
        let blocks = vec![
            mk(
                0,
                branch(
                    Predicate::ArgEq {
                        path: ArgPath::arg(0),
                        value: 99,
                    },
                    1,
                    2,
                ),
            ),
            mk(1, Terminator::Jump(BlockId(3))),
            mk(2, Terminator::Jump(BlockId(3))),
            mk(3, Terminator::Return),
        ];
        let dead = statically_dead_blocks_of(&reg, &blocks, &[BlockId(0)]);
        assert_eq!(dead, [BlockId(1)].into_iter().collect());

        // An always-taken branch kills its fallthrough side instead.
        let blocks = vec![
            mk(
                0,
                branch(
                    Predicate::NotNull {
                        path: ArgPath::arg(2),
                    },
                    1,
                    2,
                ),
            ),
            mk(1, Terminator::Return),
            mk(2, Terminator::Return),
        ];
        let dead = statically_dead_blocks_of(&reg, &blocks, &[BlockId(0)]);
        assert_eq!(dead, [BlockId(2)].into_iter().collect());

        // Undecidable branches keep both sides live.
        let blocks = vec![
            mk(0, branch(Predicate::Poisoned, 1, 2)),
            mk(1, Terminator::Return),
            mk(2, Terminator::Return),
        ];
        assert!(statically_dead_blocks_of(&reg, &blocks, &[BlockId(0)]).is_empty());
    }

    #[test]
    fn stock_kernel_dead_blocks_are_only_orphan_error_stubs() {
        // The handler generator only plants satisfiable gates, so proven
        // pruning must not orphan anything in a stock kernel: any block
        // dead *behind a branch* would be a generator bug (this analysis
        // caught two such bugs — enum gate constants wider than the
        // argument and zero-mask flag tests — now fixed in handlergen).
        // The only legitimate dead code is an unreferenced error-exit
        // stub in a handler that never draws an early-exit side region
        // (e.g. `sched_yield` has no gateable arguments at all).
        for version in [
            KernelVersion::V6_8,
            KernelVersion::V6_9,
            KernelVersion::V6_10,
        ] {
            let kernel = Kernel::build(version);
            let dead = statically_dead_blocks(&kernel);
            assert!(dead.len() <= 4, "{version}: {} dead blocks", dead.len());
            for &d in &dead {
                let b = kernel.block(d);
                assert!(
                    matches!(b.term, Terminator::Return)
                        && kernel.cfg().predecessors(d).is_empty()
                        && b.gate_depth == 0,
                    "{version}: {d:?} is dead but not an orphan error stub"
                );
            }
            assert_eq!(
                reachable_blocks(&kernel).len() + dead.len(),
                kernel.block_count()
            );
        }
    }

    #[test]
    fn dominators_on_a_diamond() {
        // 0 -> (1 | 2) -> 3 -> Return
        let blocks = vec![
            mk(0, branch(Predicate::Poisoned, 1, 2)),
            mk(1, Terminator::Jump(BlockId(3))),
            mk(2, Terminator::Jump(BlockId(3))),
            mk(3, Terminator::Return),
        ];
        let dom = dominators_of(&blocks, &[BlockId(0)]);
        assert_eq!(dom.idom(BlockId(0)), None);
        assert_eq!(dom.idom(BlockId(1)), Some(BlockId(0)));
        assert_eq!(dom.idom(BlockId(2)), Some(BlockId(0)));
        // The join point is dominated by the branch head, not a side.
        assert_eq!(dom.idom(BlockId(3)), Some(BlockId(0)));
        assert!(dom.dominates(BlockId(0), BlockId(3)));
        assert!(!dom.dominates(BlockId(1), BlockId(3)));
        assert!(dom.dominates(BlockId(3), BlockId(3)));

        let pdom = post_dominators_of(&blocks);
        assert_eq!(pdom.idom(BlockId(0)), Some(BlockId(3)));
        assert_eq!(pdom.idom(BlockId(1)), Some(BlockId(3)));
        assert_eq!(pdom.idom(BlockId(3)), None);
        assert!(pdom.dominates(BlockId(3), BlockId(0)));
    }

    #[test]
    fn kernel_dominators_are_rooted_at_handler_entries() {
        let kernel = Kernel::build(KernelVersion::V6_8);
        let dom = dominators(&kernel);
        // Orphan error-exit stubs (see the dead-blocks test) are in the
        // handler's block list but unreachable, so they dominate nothing.
        let dead = statically_dead_blocks(&kernel);
        for h in kernel.handlers() {
            assert_eq!(dom.idom(h.entry), None, "{:?}", h.entry);
            for &b in &h.blocks {
                if dead.contains(&b) {
                    continue;
                }
                assert!(
                    dom.dominates(h.entry, b),
                    "entry {:?} must dominate {:?}",
                    h.entry,
                    b
                );
            }
        }
        // Handlers have two Return exits (ok/err), so the only universal
        // post-dominance facts are local: a Jump's unique successor
        // post-dominates it, and Return blocks are roots.
        let pdom = post_dominators(&kernel);
        for b in kernel.blocks() {
            match b.term {
                Terminator::Jump(t) => {
                    assert!(
                        pdom.dominates(t, b.id),
                        "{t:?} must post-dominate {:?}",
                        b.id
                    );
                }
                Terminator::Return => assert_eq!(pdom.idom(b.id), None),
                Terminator::Branch { .. } => {}
            }
        }
    }
}
