//! Value-range (interval) abstract interpretation over handler CFGs.
//!
//! [`branch_status`] decides each branch in isolation; this module runs a
//! classic worklist fixpoint over a whole handler, propagating per-argument
//! unsigned intervals through branch predicates. That buys three things the
//! per-branch analysis cannot provide:
//!
//! * **Conjunction infeasibility** — two individually satisfiable gates on
//!   the same argument (`x in [10, 20]` guarding `x == 100`) compose to an
//!   empty interval, proving the guarded region unreachable by *any*
//!   lint-clean program.
//! * **Witness extraction** — for reachable targets, a path-sensitive
//!   solver produces concrete argument values that satisfy every scalar
//!   gate on some entry→target path, which the directed fuzzer injects
//!   into its seed corpus.
//! * **Per-block ranges** — `sp-lint --intervals` surfaces the computed
//!   ranges and infeasible edges as diagnostics.
//!
//! # Lattice
//!
//! The domain per argument path is `Interval { lo, hi }` over `u64`
//! (unsigned, inclusive, never empty) plus an implicit top; an abstract
//! state maps paths to intervals, with *absent = the type-derived initial
//! interval* (or unconstrained for untracked types). Buffer byte-lengths
//! live in a parallel map keyed by the buffer's path. Join is the
//! pointwise convex hull; a block with no state after the fixpoint is
//! *infeasible* (bottom). Widening drops any key whose bounds are still
//! moving after [`WIDEN_AFTER`] joins, guaranteeing termination even on
//! cyclic CFGs (generated handlers are DAGs, so widening is a safety net).
//!
//! # Soundness contract
//!
//! Identical to [`branch_status`]: guarantees hold for **lint-clean**
//! programs (everything the generator and mutator produce). For such a
//! program, whenever a concrete execution reaches a block and
//! `call.view_at(path)` resolves to a scalar, the observed value lies in
//! the block's interval for that path; a block proven infeasible here is
//! never concretely reached. The proptest harness in
//! `tests/soundness.rs` checks exactly this contract.

use std::collections::{BTreeMap, HashMap, HashSet, VecDeque};

use snowplow_kernel::{BasicBlock, BlockId, HandlerCfg, Predicate, Terminator};
use snowplow_syslang::{ArgPath, BufferKind, IntFormat, Registry, SyscallId, Type};

use crate::cfg::{branch_status, BranchStatus, DomTree};

/// Number of state updates a block absorbs before joins widen (drop
/// still-moving keys to top). Generated handler CFGs are acyclic, so this
/// exists for termination insurance, not precision.
pub const WIDEN_AFTER: u32 = 8;

/// Hard cap on worklist iterations per handler (defense in depth; never
/// reached on generated kernels).
const MAX_ITERATIONS: u64 = 1 << 20;

/// Budget for witness path enumeration (edges explored).
const WITNESS_STEP_BUDGET: usize = 1 << 15;

/// A non-empty inclusive unsigned range.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interval {
    /// Smallest admissible value.
    pub lo: u64,
    /// Largest admissible value.
    pub hi: u64,
}

impl Interval {
    /// `[lo, hi]`; panics if empty.
    pub fn new(lo: u64, hi: u64) -> Self {
        debug_assert!(lo <= hi, "empty interval [{lo}, {hi}]");
        Interval { lo, hi }
    }

    /// The single-value interval `[v, v]`.
    pub fn point(v: u64) -> Self {
        Interval { lo: v, hi: v }
    }

    /// Whether `v` lies in the interval.
    pub fn contains(&self, v: u64) -> bool {
        self.lo <= v && v <= self.hi
    }

    /// Intersection, or `None` when disjoint (bottom).
    pub fn intersect(&self, other: &Interval) -> Option<Interval> {
        let lo = self.lo.max(other.lo);
        let hi = self.hi.min(other.hi);
        (lo <= hi).then_some(Interval { lo, hi })
    }

    /// Convex hull (the interval join).
    pub fn hull(&self, other: &Interval) -> Interval {
        Interval {
            lo: self.lo.min(other.lo),
            hi: self.hi.max(other.hi),
        }
    }

    /// Whether the interval holds exactly one value.
    pub fn is_point(&self) -> bool {
        self.lo == self.hi
    }
}

/// Abstract state at a block: interval constraints per argument path.
///
/// Keys absent from a map carry no constraint beyond the type-derived
/// initial interval. `vals` constrains scalar values, `lens` constrains
/// buffer byte-lengths (`DataLenGt` refines these). `BTreeMap` keeps
/// iteration deterministic for diagnostics and golden output.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct AbsState {
    /// Scalar value constraints.
    pub vals: BTreeMap<ArgPath, Interval>,
    /// Buffer byte-length constraints.
    pub lens: BTreeMap<ArgPath, Interval>,
}

impl AbsState {
    /// Pointwise hull; keys present in only one operand drop to top
    /// (absent), which keeps the state an over-approximation of both.
    fn join(&self, other: &AbsState) -> AbsState {
        let join_map = |a: &BTreeMap<ArgPath, Interval>, b: &BTreeMap<ArgPath, Interval>| {
            a.iter()
                .filter_map(|(k, ia)| b.get(k).map(|ib| (k.clone(), ia.hull(ib))))
                .collect()
        };
        AbsState {
            vals: join_map(&self.vals, &other.vals),
            lens: join_map(&self.lens, &other.lens),
        }
    }

    /// Widening: keep only keys whose bounds stopped moving relative to
    /// `prev`. Strictly shrinks the key set on every application, so
    /// update chains terminate.
    fn widen(prev: &AbsState, next: &AbsState) -> AbsState {
        let widen_map = |p: &BTreeMap<ArgPath, Interval>, n: &BTreeMap<ArgPath, Interval>| {
            n.iter()
                .filter(|(k, i)| p.get(*k) == Some(i))
                .map(|(k, i)| (k.clone(), *i))
                .collect()
        };
        AbsState {
            vals: widen_map(&prev.vals, &next.vals),
            lens: widen_map(&prev.lens, &next.lens),
        }
    }
}

fn width_mask(bits: u8) -> u64 {
    if bits >= 64 {
        u64::MAX
    } else {
        (1u64 << bits) - 1
    }
}

/// The initial (type-derived) scalar interval for a value of `ty`, or
/// `None` if the type is not a tracked scalar. `Enum` ints are only
/// width-masked (mirroring the linter), not restricted to members.
pub fn type_interval(ty: &Type) -> Option<Interval> {
    match ty {
        Type::Const { value, .. } => Some(Interval::point(*value)),
        Type::Int { bits, format } => match format {
            IntFormat::Range { lo, hi } => Some(Interval::new(*lo, (*hi).max(*lo))),
            _ => Some(Interval::new(0, width_mask(*bits))),
        },
        Type::Flags { bits, .. } => Some(Interval::new(0, width_mask(*bits))),
        Type::Len { bits, .. } => Some(Interval::new(0, width_mask(*bits))),
        _ => None,
    }
}

/// The initial byte-length interval for a buffer of `ty`. Only the blob
/// lower bound is trusted: mutation can grow payloads past `max_len`
/// (matching the `branch_status` policy).
pub fn type_len_interval(ty: &Type) -> Option<Interval> {
    match ty {
        Type::Buffer {
            kind: BufferKind::Blob { min_len, .. },
        } => Some(Interval::new(*min_len as u64, u64::MAX)),
        Type::Buffer { .. } => Some(Interval::new(0, u64::MAX)),
        _ => None,
    }
}

/// Which side of a conditional branch an edge leaves through.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EdgeSide {
    /// The predicate-holds successor.
    Taken,
    /// The predicate-fails successor.
    Fallthrough,
}

/// Why an edge was cut from the feasible CFG.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EdgeCut {
    /// `branch_status` proved the branch direction impossible on its own.
    ConstProp,
    /// The interval state reaching the branch makes this side empty
    /// (conjunction infeasibility across multiple gates).
    IntervalBottom,
}

/// One statically-cut branch edge, for diagnostics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InfeasibleEdge {
    /// The branch block.
    pub from: BlockId,
    /// The unreachable successor.
    pub to: BlockId,
    /// Which side of the branch is cut.
    pub side: EdgeSide,
    /// Why it is cut.
    pub why: EdgeCut,
}

/// Fixpoint result for one handler.
#[derive(Debug, Clone)]
pub struct HandlerAnalysis {
    /// The analyzed handler.
    pub handler: SyscallId,
    /// Blocks owned by the handler (copied from its CFG).
    pub blocks: Vec<BlockId>,
    /// Worklist iterations the fixpoint took (telemetry / benchmarks).
    pub iterations: u64,
    /// Branch edges proven impossible, in deterministic block order.
    pub infeasible_edges: Vec<InfeasibleEdge>,
    /// In-state per feasible block; blocks absent here are infeasible.
    states: HashMap<BlockId, AbsState>,
    /// Feasible out-edges per block, derived from the final states.
    feasible_succs: HashMap<BlockId, Vec<BlockId>>,
}

impl HandlerAnalysis {
    /// The abstract in-state of `b`, or `None` if `b` is infeasible (or
    /// not owned by this handler).
    pub fn state(&self, b: BlockId) -> Option<&AbsState> {
        self.states.get(&b)
    }

    /// Whether some lint-clean program may reach `b`.
    pub fn is_feasible(&self, b: BlockId) -> bool {
        self.states.contains_key(&b)
    }

    /// Handler blocks proven unreachable by the interval fixpoint (a
    /// superset of the handler's statically dead blocks).
    pub fn infeasible_blocks(&self) -> impl Iterator<Item = BlockId> + '_ {
        self.blocks
            .iter()
            .copied()
            .filter(|b| !self.states.contains_key(b))
    }

    /// Successors of `b` along edges the fixpoint kept feasible.
    pub fn feasible_successors(&self, b: BlockId) -> &[BlockId] {
        self.feasible_succs.get(&b).map_or(&[], Vec::as_slice)
    }
}

/// Shared per-handler context: resolves a path's initial intervals from
/// the syscall description.
struct Ctx<'a> {
    reg: &'a Registry,
    handler: SyscallId,
}

impl Ctx<'_> {
    fn init_val(&self, path: &ArgPath) -> Option<Interval> {
        let ty = self.reg.type_at(self.handler, path)?;
        type_interval(self.reg.ty(ty))
    }

    fn init_len(&self, path: &ArgPath) -> Option<Interval> {
        let ty = self.reg.type_at(self.handler, path)?;
        type_len_interval(self.reg.ty(ty))
    }

    /// The declared bit width of the scalar at `path`, if any.
    fn width_of(&self, path: &ArgPath) -> Option<u8> {
        let ty = self.reg.type_at(self.handler, path)?;
        self.reg.ty(ty).bits()
    }
}

/// Transfers `st` across one side of a branch on `pred`. Returns `None`
/// when the side is interval-infeasible. Refinements are sound for values
/// that concretely resolve at the path (see module docs); predicates over
/// non-scalar shapes pass the state through unchanged.
fn refine_edge(ctx: &Ctx<'_>, st: &AbsState, pred: &Predicate, side: EdgeSide) -> Option<AbsState> {
    let taken = side == EdgeSide::Taken;
    match pred {
        Predicate::ArgEq { path, value } => {
            let cur = st.vals.get(path).copied().or_else(|| ctx.init_val(path));
            let Some(cur) = cur else {
                return Some(st.clone());
            };
            let next = if taken {
                cur.intersect(&Interval::point(*value))?
            } else if cur.is_point() && cur.lo == *value {
                return None;
            } else if cur.lo == *value {
                Interval::new(cur.lo + 1, cur.hi)
            } else if cur.hi == *value {
                Interval::new(cur.lo, cur.hi - 1)
            } else {
                cur
            };
            let mut out = st.clone();
            out.vals.insert(path.clone(), next);
            Some(out)
        }
        Predicate::ArgInRange { path, lo, hi } => {
            let cur = st.vals.get(path).copied().or_else(|| ctx.init_val(path));
            let Some(cur) = cur else {
                return Some(st.clone());
            };
            let next = if taken {
                cur.intersect(&Interval::new(*lo, (*hi).max(*lo)))?
            } else {
                // Subtract [lo, hi]; representable only when the range
                // overlaps one end of `cur`.
                let (lo, hi) = (*lo, (*hi).max(*lo));
                if lo <= cur.lo && hi >= cur.hi {
                    return None;
                } else if lo <= cur.lo && hi >= cur.lo {
                    Interval::new(hi + 1, cur.hi)
                } else if hi >= cur.hi && lo <= cur.hi {
                    Interval::new(cur.lo, lo - 1)
                } else {
                    cur
                }
            };
            let mut out = st.clone();
            out.vals.insert(path.clone(), next);
            Some(out)
        }
        Predicate::ArgMaskEq { path, mask, value } => {
            let cur = st.vals.get(path).copied().or_else(|| ctx.init_val(path));
            let Some(cur) = cur else {
                return Some(st.clone());
            };
            if taken {
                // x & mask == value bounds x to [value, value | !mask]
                // (bits inside the mask are fixed; the rest are free).
                let wmask = ctx.width_of(path).map_or(u64::MAX, width_mask);
                let next = if mask & wmask == wmask {
                    cur.intersect(&Interval::point(*value))?
                } else {
                    cur.intersect(&Interval::new(*value, *value | (!mask & wmask)))?
                };
                let mut out = st.clone();
                out.vals.insert(path.clone(), next);
                Some(out)
            } else if cur.is_point() && cur.lo & mask == *value {
                None
            } else {
                Some(st.clone())
            }
        }
        Predicate::DataLenGt { path, len } => {
            let cur = st.lens.get(path).copied().or_else(|| ctx.init_len(path));
            let Some(cur) = cur else {
                return Some(st.clone());
            };
            let next = if taken {
                let lo = len.checked_add(1)?;
                cur.intersect(&Interval::new(lo, u64::MAX))?
            } else {
                cur.intersect(&Interval::new(0, *len))?
            };
            let mut out = st.clone();
            out.lens.insert(path.clone(), next);
            Some(out)
        }
        // Pointer/union/resource/state predicates carry no interval
        // information; both sides stay feasible with the same state.
        _ => Some(st.clone()),
    }
}

/// Runs the interval worklist fixpoint over one handler. `blocks` is the
/// kernel's full flat block table (indexed by global `BlockId`).
pub fn analyze_handler(reg: &Registry, blocks: &[BasicBlock], h: &HandlerCfg) -> HandlerAnalysis {
    let ctx = Ctx {
        reg,
        handler: h.syscall,
    };
    let mut states: HashMap<BlockId, AbsState> = HashMap::new();
    let mut updates: HashMap<BlockId, u32> = HashMap::new();
    let mut work: VecDeque<BlockId> = VecDeque::new();
    states.insert(h.entry, AbsState::default());
    work.push_back(h.entry);
    let mut iterations = 0u64;

    while let Some(b) = work.pop_front() {
        iterations += 1;
        if iterations > MAX_ITERATIONS {
            break;
        }
        let st = states[&b].clone();
        let block = &blocks[b.index()];
        let outs: Vec<(BlockId, AbsState)> = match &block.term {
            Terminator::Return => Vec::new(),
            Terminator::Jump(t) => vec![(*t, st)],
            Terminator::Branch {
                pred,
                taken,
                fallthrough,
            } => {
                let status = branch_status(reg, block.handler, pred);
                let mut outs = Vec::with_capacity(2);
                if status != BranchStatus::NeverTaken {
                    if let Some(out) = refine_edge(&ctx, &st, pred, EdgeSide::Taken) {
                        outs.push((*taken, out));
                    }
                }
                if status != BranchStatus::AlwaysTaken {
                    if let Some(out) = refine_edge(&ctx, &st, pred, EdgeSide::Fallthrough) {
                        outs.push((*fallthrough, out));
                    }
                }
                outs
            }
        };
        for (to, out) in outs {
            let entry = states.get(&to);
            let next = match entry {
                None => out,
                Some(prev) => {
                    let joined = prev.join(&out);
                    if joined == *prev {
                        continue;
                    }
                    let count = updates.entry(to).or_insert(0);
                    *count += 1;
                    if *count > WIDEN_AFTER {
                        AbsState::widen(prev, &joined)
                    } else {
                        joined
                    }
                }
            };
            states.insert(to, next);
            if !work.contains(&to) {
                work.push_back(to);
            }
        }
    }

    // Derive feasible edges and diagnostics from the final states.
    let mut infeasible_edges = Vec::new();
    let mut feasible_succs: HashMap<BlockId, Vec<BlockId>> = HashMap::new();
    let mut owned: Vec<BlockId> = h.blocks.clone();
    owned.sort_unstable();
    for &b in &owned {
        let Some(st) = states.get(&b) else { continue };
        let block = &blocks[b.index()];
        let mut succs = Vec::new();
        match &block.term {
            Terminator::Return => {}
            Terminator::Jump(t) => succs.push(*t),
            Terminator::Branch {
                pred,
                taken,
                fallthrough,
            } => {
                let status = branch_status(reg, block.handler, pred);
                for (side, to) in [
                    (EdgeSide::Taken, *taken),
                    (EdgeSide::Fallthrough, *fallthrough),
                ] {
                    let cut = match (status, side) {
                        (BranchStatus::NeverTaken, EdgeSide::Taken)
                        | (BranchStatus::AlwaysTaken, EdgeSide::Fallthrough) => {
                            Some(EdgeCut::ConstProp)
                        }
                        _ => refine_edge(&ctx, st, pred, side)
                            .is_none()
                            .then_some(EdgeCut::IntervalBottom),
                    };
                    match cut {
                        Some(why) => infeasible_edges.push(InfeasibleEdge {
                            from: b,
                            to,
                            side,
                            why,
                        }),
                        None => succs.push(to),
                    }
                }
            }
        }
        feasible_succs.insert(b, succs);
    }

    HandlerAnalysis {
        handler: h.syscall,
        blocks: h.blocks.clone(),
        iterations,
        infeasible_edges,
        states,
        feasible_succs,
    }
}

/// How a target block was proven unreachable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnreachableProof {
    /// The block id does not exist in this kernel build.
    OutOfRange,
    /// Graph-shape / per-branch constant propagation already proves the
    /// block dead ([`crate::statically_dead_blocks`]).
    DeadBlock,
    /// Every path to the block crosses a conjunction of argument gates
    /// with an empty interval solution; `gates` counts the conditional
    /// branches dominating the block (the proof's predicate chain).
    InfeasiblePredicateChain {
        /// Branch blocks on the target's dominator chain.
        gates: u32,
    },
}

/// One concrete argument assignment of a reachability witness.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArgConstraint {
    /// Where to write the value.
    pub path: ArgPath,
    /// What to write.
    pub kind: ConstraintKind,
}

/// The value a witness assigns at a path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConstraintKind {
    /// Set the scalar to this value.
    IntValue(u64),
    /// Resize the buffer payload to exactly this many bytes.
    DataLen(u64),
}

impl ArgConstraint {
    /// Applies the constraint to `call` in place. Returns `false` when the
    /// call's concrete structure does not contain the path (e.g. a NULL
    /// optional pointer on the way).
    pub fn apply(&self, call: &mut snowplow_prog::Call) -> bool {
        match call.arg_at_mut(&self.path) {
            Some(snowplow_prog::Arg::Int { value }) => {
                if let ConstraintKind::IntValue(v) = self.kind {
                    *value = v;
                    return true;
                }
                false
            }
            Some(snowplow_prog::Arg::Data { bytes }) => {
                if let ConstraintKind::DataLen(n) = self.kind {
                    bytes.resize(n as usize, 0x5a);
                    return true;
                }
                false
            }
            _ => false,
        }
    }
}

/// Static classification of one `(handler, target_block)` pair.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Verdict {
    /// No lint-clean program reaches the target; carries the proof kind.
    ProvedUnreachable(UnreachableProof),
    /// The target sits behind scalar gates only, and `arg_constraints`
    /// satisfies every gate on some entry→target path.
    ReachableWithWitness {
        /// Concrete argument assignments satisfying the path's gates.
        arg_constraints: Vec<ArgConstraint>,
    },
    /// Feasible per the intervals, but no all-scalar witness path exists
    /// (e.g. the target is guarded by resource or state predicates).
    Unknown,
}

/// Counts the conditional branches on `target`'s dominator chain — the
/// predicate chain cited by [`UnreachableProof::InfeasiblePredicateChain`].
pub fn dominating_gates(blocks: &[BasicBlock], dom: &DomTree, target: BlockId) -> u32 {
    let mut gates = 0;
    let mut cur = dom.idom(target);
    while let Some(b) = cur {
        if matches!(blocks[b.index()].term, Terminator::Branch { .. }) {
            gates += 1;
        }
        cur = dom.idom(b);
    }
    gates
}

/// Classifies `target` within its handler. `dead` is the kernel's
/// statically-dead set and `dom` its dominator tree (both cached by
/// [`crate::AnalysisCache`]).
pub fn classify(
    reg: &Registry,
    blocks: &[BasicBlock],
    h: &HandlerCfg,
    analysis: &HandlerAnalysis,
    dom: &DomTree,
    dead: &HashSet<BlockId>,
    target: BlockId,
) -> Verdict {
    if target.index() >= blocks.len() {
        return Verdict::ProvedUnreachable(UnreachableProof::OutOfRange);
    }
    if dead.contains(&target) {
        return Verdict::ProvedUnreachable(UnreachableProof::DeadBlock);
    }
    if !analysis.is_feasible(target) {
        return Verdict::ProvedUnreachable(UnreachableProof::InfeasiblePredicateChain {
            gates: dominating_gates(blocks, dom, target),
        });
    }
    match find_witness(reg, blocks, analysis, h.entry, target) {
        Some(arg_constraints) => Verdict::ReachableWithWitness { arg_constraints },
        None => Verdict::Unknown,
    }
}

/// Per-path constraint set accumulated along one witness path.
#[derive(Debug, Clone, Default)]
struct PathConstraint {
    /// Required value interval (seeded from the type's initial interval).
    iv: Option<Interval>,
    /// Values the scalar must not equal.
    excluded: Vec<u64>,
    /// Inclusive ranges the scalar must lie outside.
    anti: Vec<(u64, u64)>,
    /// `(mask, value)` pairs: `x & mask == value` must hold.
    masks: Vec<(u64, u64)>,
    /// `(mask, value)` pairs: `x & mask != value` must hold.
    anti_masks: Vec<(u64, u64)>,
    /// Required minimum buffer length (inclusive).
    min_len: Option<u64>,
    /// Required maximum buffer length (inclusive).
    max_len: Option<u64>,
}

/// Folds one branch decision into the path constraints. Returns `false`
/// when the decision contradicts the constraints so far or needs a
/// non-scalar gate (abandon this path).
fn constrain(
    ctx: &Ctx<'_>,
    cs: &mut BTreeMap<ArgPath, PathConstraint>,
    pred: &Predicate,
    side: EdgeSide,
) -> bool {
    let taken = side == EdgeSide::Taken;
    match pred {
        Predicate::ArgEq { path, value } => {
            let Some(init) = ctx.init_val(path) else {
                return false;
            };
            let pc = cs.entry(path.clone()).or_default();
            let iv = pc.iv.unwrap_or(init);
            if taken {
                match iv.intersect(&Interval::point(*value)) {
                    Some(next) => pc.iv = Some(next),
                    None => return false,
                }
            } else {
                pc.iv = Some(iv);
                pc.excluded.push(*value);
            }
            true
        }
        Predicate::ArgInRange { path, lo, hi } => {
            let Some(init) = ctx.init_val(path) else {
                return false;
            };
            let pc = cs.entry(path.clone()).or_default();
            let iv = pc.iv.unwrap_or(init);
            if taken {
                match iv.intersect(&Interval::new(*lo, (*hi).max(*lo))) {
                    Some(next) => pc.iv = Some(next),
                    None => return false,
                }
            } else {
                pc.iv = Some(iv);
                pc.anti.push((*lo, (*hi).max(*lo)));
            }
            true
        }
        Predicate::ArgMaskEq { path, mask, value } => {
            let Some(init) = ctx.init_val(path) else {
                return false;
            };
            let pc = cs.entry(path.clone()).or_default();
            let iv = pc.iv.unwrap_or(init);
            pc.iv = Some(iv);
            if taken {
                // Two mask requirements must agree on overlapping bits.
                for (m, v) in &pc.masks {
                    if (v & mask & m) != (value & mask & m) {
                        return false;
                    }
                }
                pc.masks.push((*mask, *value));
            } else {
                pc.anti_masks.push((*mask, *value));
            }
            true
        }
        Predicate::DataLenGt { path, len } => {
            let pc = cs.entry(path.clone()).or_default();
            if taken {
                let Some(need) = len.checked_add(1) else {
                    return false;
                };
                pc.min_len = Some(pc.min_len.map_or(need, |m| m.max(need)));
            } else {
                pc.max_len = Some(pc.max_len.map_or(*len, |m| m.min(*len)));
            }
            if let (Some(lo), Some(hi)) = (pc.min_len, pc.max_len) {
                if lo > hi {
                    return false;
                }
            }
            true
        }
        // A non-scalar gate cannot be forced by argument values alone:
        // refuse the path and let the DFS look for an all-scalar one.
        _ => false,
    }
}

/// Solves the accumulated constraints into concrete assignments, or
/// `None` if some path's constraint set has no solution among the tried
/// candidates. Fully deterministic.
fn solve(ctx: &Ctx<'_>, cs: &BTreeMap<ArgPath, PathConstraint>) -> Option<Vec<ArgConstraint>> {
    let mut out = Vec::new();
    for (path, pc) in cs {
        // Buffer length constraints.
        if pc.min_len.is_some() || pc.max_len.is_some() {
            let init = ctx.init_len(path)?;
            let lo = pc.min_len.unwrap_or(0).max(init.lo);
            let hi = pc.max_len.unwrap_or(u64::MAX).min(init.hi);
            if lo > hi {
                return None;
            }
            out.push(ArgConstraint {
                path: path.clone(),
                kind: ConstraintKind::DataLen(lo),
            });
            continue;
        }
        let iv = pc.iv?;
        // Combine mask requirements (consistency was checked on the way).
        let (cm, cv) = pc
            .masks
            .iter()
            .fold((0u64, 0u64), |(m, v), (pm, pv)| (m | pm, v | pv));
        let fix = |c: u64| (c & !cm) | cv;
        let ok = |c: u64| {
            iv.contains(c)
                && pc.masks.iter().all(|(m, v)| c & m == *v)
                && pc.anti_masks.iter().all(|(m, v)| c & m != *v)
                && !pc.excluded.contains(&c)
                && pc.anti.iter().all(|(lo, hi)| c < *lo || c > *hi)
        };
        // Deterministic candidate list: interval endpoints, the combined
        // mask value, and the first value past each exclusion.
        let mut cands = vec![fix(iv.lo), fix(iv.hi), cv];
        for e in &pc.excluded {
            cands.push(fix(e.wrapping_add(1)));
            cands.push(fix(e.wrapping_sub(1)));
        }
        for (lo, hi) in &pc.anti {
            cands.push(fix(hi.wrapping_add(1)));
            cands.push(fix(lo.wrapping_sub(1)));
        }
        let v = cands.into_iter().find(|c| ok(*c))?;
        out.push(ArgConstraint {
            path: path.clone(),
            kind: ConstraintKind::IntValue(v),
        });
    }
    Some(out)
}

/// Depth-first search for an entry→target path whose every branch
/// decision is a satisfiable scalar constraint. Edges pruned by the
/// fixpoint are skipped outright. Deterministic and budgeted.
fn find_witness(
    reg: &Registry,
    blocks: &[BasicBlock],
    analysis: &HandlerAnalysis,
    entry: BlockId,
    target: BlockId,
) -> Option<Vec<ArgConstraint>> {
    let ctx = Ctx {
        reg,
        handler: analysis.handler,
    };
    let mut budget = WITNESS_STEP_BUDGET;
    let mut on_path: HashSet<BlockId> = HashSet::new();
    dfs(
        &ctx,
        blocks,
        analysis,
        entry,
        target,
        &mut BTreeMap::new(),
        &mut on_path,
        &mut budget,
    )
}

#[allow(clippy::too_many_arguments)]
fn dfs(
    ctx: &Ctx<'_>,
    blocks: &[BasicBlock],
    analysis: &HandlerAnalysis,
    at: BlockId,
    target: BlockId,
    cs: &mut BTreeMap<ArgPath, PathConstraint>,
    on_path: &mut HashSet<BlockId>,
    budget: &mut usize,
) -> Option<Vec<ArgConstraint>> {
    if at == target {
        return solve(ctx, cs);
    }
    if *budget == 0 || !on_path.insert(at) {
        return None;
    }
    let block = &blocks[at.index()];
    let result = (|| {
        match &block.term {
            Terminator::Return => None,
            Terminator::Jump(t) => {
                if !analysis.is_feasible(*t) {
                    return None;
                }
                *budget = budget.saturating_sub(1);
                dfs(ctx, blocks, analysis, *t, target, cs, on_path, budget)
            }
            Terminator::Branch {
                pred,
                taken,
                fallthrough,
            } => {
                let feasible = analysis.feasible_successors(at);
                for (side, to) in [
                    (EdgeSide::Taken, *taken),
                    (EdgeSide::Fallthrough, *fallthrough),
                ] {
                    // `feasible_successors` lists surviving edge targets;
                    // a branch side is live iff its target is listed (a
                    // two-sided edge to the same block stays symmetric).
                    if !feasible.contains(&to) {
                        continue;
                    }
                    *budget = budget.saturating_sub(1);
                    // Status-pruned-to-always edges need no constraint;
                    // Unknown scalar sides fold into the constraint set.
                    let status = branch_status(ctx.reg, block.handler, pred);
                    let needs_constraint = matches!(status, BranchStatus::Unknown);
                    let mut saved = None;
                    if needs_constraint {
                        let snapshot = cs.clone();
                        if !constrain(ctx, cs, pred, side) {
                            *cs = snapshot;
                            continue;
                        }
                        saved = Some(snapshot);
                    }
                    if let Some(w) = dfs(ctx, blocks, analysis, to, target, cs, on_path, budget) {
                        return Some(w);
                    }
                    if let Some(snapshot) = saved {
                        *cs = snapshot;
                    }
                }
                None
            }
        }
    })();
    on_path.remove(&at);
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use snowplow_kernel::{HandlerGenConfig, Kernel, KernelVersion};
    use snowplow_syslang::PathSegment;

    fn kernel() -> Kernel {
        Kernel::build(KernelVersion::V6_8)
    }

    #[test]
    fn interval_algebra() {
        let a = Interval::new(10, 20);
        let b = Interval::new(15, 30);
        assert_eq!(a.intersect(&b), Some(Interval::new(15, 20)));
        assert_eq!(a.hull(&b), Interval::new(10, 30));
        assert_eq!(a.intersect(&Interval::new(21, 25)), None);
        assert!(Interval::point(7).is_point());
        assert!(a.contains(10) && a.contains(20) && !a.contains(21));
    }

    #[test]
    fn type_intervals_follow_declarations() {
        assert_eq!(
            type_interval(&Type::Const { value: 9, bits: 32 }),
            Some(Interval::point(9))
        );
        assert_eq!(
            type_interval(&Type::Int {
                bits: 32,
                format: IntFormat::Range { lo: 5, hi: 10 }
            }),
            Some(Interval::new(5, 10))
        );
        assert_eq!(
            type_interval(&Type::Int {
                bits: 8,
                format: IntFormat::Any
            }),
            Some(Interval::new(0, 0xff))
        );
        assert_eq!(
            type_interval(&Type::Buffer {
                kind: BufferKind::Filename
            }),
            None
        );
        assert_eq!(
            type_len_interval(&Type::Buffer {
                kind: BufferKind::Blob {
                    min_len: 4,
                    max_len: 64
                }
            }),
            Some(Interval::new(4, u64::MAX))
        );
    }

    #[test]
    fn every_handler_entry_is_feasible_and_fixpoint_terminates() {
        let k = kernel();
        for h in k.handlers() {
            let a = analyze_handler(k.registry(), k.blocks(), h);
            assert!(
                a.is_feasible(h.entry),
                "entry infeasible for {:?}",
                h.syscall
            );
            assert!(a.iterations > 0 && a.iterations < MAX_ITERATIONS);
            // Infeasible blocks must include the handler's share of the
            // statically dead set (interval analysis only prunes more).
            let state_blocks: Vec<_> = h.blocks.iter().filter(|b| a.is_feasible(**b)).collect();
            assert!(!state_blocks.is_empty());
        }
    }

    #[test]
    fn interval_infeasibility_subsumes_dead_blocks() {
        let k = kernel();
        let dead = crate::statically_dead_blocks(&k);
        for h in k.handlers() {
            let a = analyze_handler(k.registry(), k.blocks(), h);
            for b in &h.blocks {
                if dead.contains(b) {
                    assert!(!a.is_feasible(*b), "dead block {b:?} has a state");
                }
            }
        }
    }

    #[test]
    fn planted_probe_is_proved_infeasible_with_predicate_chain() {
        let gen = HandlerGenConfig {
            analysis_probes: true,
            ..HandlerGenConfig::default()
        };
        let k = Kernel::build_with(KernelVersion::V6_8, gen, Default::default());
        let dead = crate::statically_dead_blocks(&k);
        let dom = crate::dominators(&k);
        let mut chain_proofs = 0;
        for h in k.handlers() {
            let a = analyze_handler(k.registry(), k.blocks(), h);
            for b in a.infeasible_blocks() {
                if dead.contains(&b) {
                    continue;
                }
                let v = classify(k.registry(), k.blocks(), h, &a, &dom, &dead, b);
                match v {
                    Verdict::ProvedUnreachable(UnreachableProof::InfeasiblePredicateChain {
                        gates,
                    }) => {
                        assert!(gates >= 1, "proof should cite dominating gates");
                        chain_proofs += 1;
                    }
                    other => panic!("expected predicate-chain proof, got {other:?}"),
                }
            }
        }
        assert!(
            chain_proofs >= 1,
            "probe kernel must contain interval-infeasible blocks"
        );
    }

    #[test]
    fn witness_satisfies_every_gate_on_its_path() {
        let k = kernel();
        let dead = crate::statically_dead_blocks(&k);
        let dom = crate::dominators(&k);
        let mut witnessed = 0;
        for h in k.handlers().iter().take(16) {
            let a = analyze_handler(k.registry(), k.blocks(), h);
            for &b in &h.blocks {
                if !a.is_feasible(b) || k.blocks()[b.index()].gate_depth == 0 {
                    continue;
                }
                if let Verdict::ReachableWithWitness { arg_constraints } =
                    classify(k.registry(), k.blocks(), h, &a, &dom, &dead, b)
                {
                    witnessed += 1;
                    for c in &arg_constraints {
                        if let ConstraintKind::IntValue(v) = c.kind {
                            let ty = k.registry().type_at(h.syscall, &c.path).unwrap();
                            if let Some(iv) = type_interval(k.registry().ty(ty)) {
                                assert!(
                                    iv.contains(v),
                                    "witness value {v:#x} outside type interval {iv:?}"
                                );
                            }
                        }
                    }
                }
            }
        }
        assert!(witnessed > 0, "expected some witness-backed gated blocks");
    }

    #[test]
    fn witness_applies_to_generated_calls() {
        use snowplow_prog::Arg;
        let k = kernel();
        let reg = k.registry();
        // Hand-build a call for the first syscall with an int arg and
        // check IntValue application round-trips through view_at.
        for id in reg.syscall_ids() {
            let def = reg.syscall(id);
            let Some((i, _)) = def
                .args
                .iter()
                .enumerate()
                .find(|(_, f)| matches!(reg.ty(f.ty), Type::Int { .. }))
            else {
                continue;
            };
            let mut call = snowplow_prog::Call {
                def: id,
                args: def
                    .args
                    .iter()
                    .map(|f| match reg.ty(f.ty) {
                        Type::Buffer { .. } => Arg::Data { bytes: vec![0; 8] },
                        _ => Arg::int(0),
                    })
                    .collect(),
            };
            let c = ArgConstraint {
                path: ArgPath::arg(i),
                kind: ConstraintKind::IntValue(0x2a),
            };
            assert!(c.apply(&mut call));
            assert!(matches!(
                call.view_at(&ArgPath::arg(i)),
                Some(snowplow_prog::ArgView::Int(0x2a))
            ));
            return;
        }
        panic!("no syscall with a top-level int argument");
    }

    #[test]
    fn refine_edge_composes_disjoint_gates_to_bottom() {
        let k = kernel();
        let reg = k.registry();
        // Find any handler with an Int-typed top-level path to exercise
        // the transfer function directly.
        for id in reg.syscall_ids() {
            let paths = reg.enumerate_paths(id);
            let Some((path, _)) = paths.iter().find(|(p, t)| {
                matches!(
                    reg.ty(*t),
                    Type::Int {
                        format: IntFormat::Any,
                        ..
                    }
                ) && p.segments().len() == 1
                    && matches!(p.segments()[0], PathSegment::Arg(_))
            }) else {
                continue;
            };
            let ctx = Ctx { reg, handler: id };
            let st = AbsState::default();
            let in_range = Predicate::ArgInRange {
                path: path.clone(),
                lo: 0x10,
                hi: 0x20,
            };
            let taken = refine_edge(&ctx, &st, &in_range, EdgeSide::Taken).unwrap();
            assert_eq!(taken.vals.get(path), Some(&Interval::new(0x10, 0x20)));
            let eq_out = Predicate::ArgEq {
                path: path.clone(),
                value: 0x40,
            };
            assert!(
                refine_edge(&ctx, &taken, &eq_out, EdgeSide::Taken).is_none(),
                "x in [0x10,0x20] && x == 0x40 must be bottom"
            );
            return;
        }
        panic!("no handler with a top-level Any int argument");
    }
}
