//! `sp-lint` — lints syz-format corpus files against the built-in
//! syscall descriptions, with file:line diagnostics.
//!
//! ```text
//! sp-lint FILE...              lint corpus files (exit 1 on violations)
//! sp-lint --generate N [--seed S]
//!                              self-check: generate N programs and lint
//!                              each (exit 1 if any violates — would
//!                              indicate a generator bug)
//! sp-lint --intervals [HANDLER...]
//!                              print per-block value ranges and
//!                              infeasible-branch diagnostics from the
//!                              abstract interpreter (all handlers, or
//!                              only the named ones; exit 2 on an
//!                              unknown handler name)
//! ```

use std::process::ExitCode;

use rand::rngs::StdRng;
use rand::SeedableRng;
use snowplow_analysis::lint;
use snowplow_prog::gen::Generator;
use snowplow_syslang::builtin;

fn usage() -> ExitCode {
    eprintln!("usage: sp-lint FILE...");
    eprintln!("       sp-lint --generate N [--seed S]");
    eprintln!("       sp-lint --intervals [HANDLER...]");
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        return usage();
    }
    if args[0] == "--generate" {
        let Some(n) = args.get(1).and_then(|s| s.parse::<u64>().ok()) else {
            return usage();
        };
        let seed = match args.get(2).map(String::as_str) {
            Some("--seed") => match args.get(3).and_then(|s| s.parse::<u64>().ok()) {
                Some(s) => s,
                None => return usage(),
            },
            Some(_) => return usage(),
            None => 0,
        };
        return generate_mode(n, seed);
    }
    if args[0] == "--intervals" {
        return intervals_mode(&args[1..]);
    }
    let reg = builtin::linux_sim();
    let mut violations = 0usize;
    for path in &args {
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("{path}: {e}");
                violations += 1;
                continue;
            }
        };
        match lint::lint_text(&reg, &text) {
            Ok(diags) => {
                for d in &diags {
                    println!(
                        "{path}:{}: [{}] {}",
                        d.line, d.diagnostic.rule, d.diagnostic.message
                    );
                }
                violations += diags.len();
            }
            Err(e) => {
                println!("{path}:{}:{}: parse error: {}", e.line, e.col, e.message);
                violations += 1;
            }
        }
    }
    if violations == 0 {
        println!("{} file(s) clean", args.len());
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

/// `file:line`-style name for a block: `sim_<handler>:b<idx>` where
/// `idx` is the block's position inside its handler (stable across
/// builds of the same kernel version, like a line number in a source
/// file).
fn block_name(
    kernel: &snowplow_kernel::Kernel,
    h: &snowplow_kernel::HandlerCfg,
    idx: usize,
) -> String {
    format!("{}:b{idx}", kernel.handler_location(h.syscall))
}

fn fmt_interval(iv: &snowplow_analysis::Interval) -> String {
    if iv.lo == iv.hi {
        format!("{{{:#x}}}", iv.lo)
    } else if iv.hi == u64::MAX {
        format!("[{:#x}, MAX]", iv.lo)
    } else {
        format!("[{:#x}, {:#x}]", iv.lo, iv.hi)
    }
}

fn intervals_mode(names: &[String]) -> ExitCode {
    use snowplow_analysis::{AnalysisCache, EdgeCut, EdgeSide};
    use snowplow_kernel::{Kernel, KernelVersion};

    let kernel = Kernel::build(KernelVersion::V6_8);
    let reg = kernel.registry();
    let mut wanted = Vec::new();
    for n in names {
        // Accept both the registry name ("open") and the location name
        // the listing prints ("sim_open").
        let resolved = reg.syscall_by_name(n).or_else(|| {
            kernel
                .handlers()
                .iter()
                .map(|h| h.syscall)
                .find(|&id| kernel.handler_location(id) == *n)
        });
        match resolved {
            Some(id) => wanted.push(id),
            None => {
                eprintln!("unknown handler: {n}");
                return ExitCode::from(2);
            }
        }
    }

    let cache = AnalysisCache::shared();
    let (mut blocks_total, mut infeasible_total, mut edges_total) = (0usize, 0usize, 0usize);
    let mut handlers = 0usize;
    for h in kernel.handlers() {
        if !wanted.is_empty() && !wanted.contains(&h.syscall) {
            continue;
        }
        handlers += 1;
        let analysis = cache.handler_analysis(&kernel, h.syscall);
        println!(
            "{} ({} blocks, fixpoint in {} iterations)",
            kernel.handler_location(h.syscall),
            h.blocks.len(),
            analysis.iterations
        );
        let idx_of = |b: snowplow_kernel::BlockId| {
            h.blocks.iter().position(|&x| x == b).unwrap_or(usize::MAX)
        };
        for (idx, &b) in h.blocks.iter().enumerate() {
            blocks_total += 1;
            match analysis.state(b) {
                None => {
                    infeasible_total += 1;
                    println!("  {} INFEASIBLE", block_name(&kernel, h, idx));
                }
                Some(st) => {
                    print!("  {}", block_name(&kernel, h, idx));
                    if st.vals.is_empty() && st.lens.is_empty() {
                        print!(" (top)");
                    }
                    println!();
                    for (path, iv) in &st.vals {
                        println!("    {path} in {}", fmt_interval(iv));
                    }
                    for (path, iv) in &st.lens {
                        println!("    len({path}) in {}", fmt_interval(iv));
                    }
                }
            }
        }
        for e in &analysis.infeasible_edges {
            edges_total += 1;
            let side = match e.side {
                EdgeSide::Taken => "taken",
                EdgeSide::Fallthrough => "fallthrough",
            };
            let why = match e.why {
                EdgeCut::ConstProp => "branch statically resolved",
                EdgeCut::IntervalBottom => "value ranges exclude every satisfying input",
            };
            println!(
                "  {} -> {} ({side}): {why}",
                block_name(&kernel, h, idx_of(e.from)),
                block_name(&kernel, h, idx_of(e.to)),
            );
        }
    }
    println!(
        "{handlers} handler(s), {blocks_total} block(s), {infeasible_total} infeasible block(s), {edges_total} infeasible edge(s)"
    );
    ExitCode::SUCCESS
}

fn generate_mode(n: u64, seed: u64) -> ExitCode {
    let reg = builtin::linux_sim();
    let generator = Generator::new(&reg);
    let mut violations = 0usize;
    for i in 0..n {
        let mut rng = StdRng::seed_from_u64(seed.wrapping_add(i));
        let prog = generator.generate(&mut rng, 1 + (i as usize % 12));
        for d in lint::lint(&reg, &prog) {
            println!("generated #{i} (seed {}): {d}", seed.wrapping_add(i));
            violations += 1;
        }
    }
    println!("{n} generated program(s), {violations} violation(s)");
    if violations == 0 {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
