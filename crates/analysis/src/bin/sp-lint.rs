//! `sp-lint` — lints syz-format corpus files against the built-in
//! syscall descriptions, with file:line diagnostics.
//!
//! ```text
//! sp-lint FILE...              lint corpus files (exit 1 on violations)
//! sp-lint --generate N [--seed S]
//!                              self-check: generate N programs and lint
//!                              each (exit 1 if any violates — would
//!                              indicate a generator bug)
//! ```

use std::process::ExitCode;

use rand::rngs::StdRng;
use rand::SeedableRng;
use snowplow_analysis::lint;
use snowplow_prog::gen::Generator;
use snowplow_syslang::builtin;

fn usage() -> ExitCode {
    eprintln!("usage: sp-lint FILE...");
    eprintln!("       sp-lint --generate N [--seed S]");
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        return usage();
    }
    if args[0] == "--generate" {
        let Some(n) = args.get(1).and_then(|s| s.parse::<u64>().ok()) else {
            return usage();
        };
        let seed = match args.get(2).map(String::as_str) {
            Some("--seed") => match args.get(3).and_then(|s| s.parse::<u64>().ok()) {
                Some(s) => s,
                None => return usage(),
            },
            Some(_) => return usage(),
            None => 0,
        };
        return generate_mode(n, seed);
    }
    let reg = builtin::linux_sim();
    let mut violations = 0usize;
    for path in &args {
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("{path}: {e}");
                violations += 1;
                continue;
            }
        };
        match lint::lint_text(&reg, &text) {
            Ok(diags) => {
                for d in &diags {
                    println!(
                        "{path}:{}: [{}] {}",
                        d.line, d.diagnostic.rule, d.diagnostic.message
                    );
                }
                violations += diags.len();
            }
            Err(e) => {
                println!("{path}:{}:{}: parse error: {}", e.line, e.col, e.message);
                violations += 1;
            }
        }
    }
    if violations == 0 {
        println!("{} file(s) clean", args.len());
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn generate_mode(n: u64, seed: u64) -> ExitCode {
    let reg = builtin::linux_sim();
    let generator = Generator::new(&reg);
    let mut violations = 0usize;
    for i in 0..n {
        let mut rng = StdRng::seed_from_u64(seed.wrapping_add(i));
        let prog = generator.generate(&mut rng, 1 + (i as usize % 12));
        for d in lint::lint(&reg, &prog) {
            println!("generated #{i} (seed {}): {d}", seed.wrapping_add(i));
            violations += 1;
        }
    }
    println!("{n} generated program(s), {violations} violation(s)");
    if violations == 0 {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
