//! The program linter: a semantic checker over [`Prog`] + [`Registry`].
//!
//! `Prog::validate` only checks arity, structural shape, and that
//! resource references point backward at *some* producing call. The
//! linter is strictly stronger: it additionally enforces every value
//! constraint the generator and mutator are supposed to maintain —
//! resource *kind* agreement, scalar width masks and declared ranges,
//! `Const` equality, length-field consistency with `Prog::finalize`,
//! minimum buffer lengths, array arity bounds, union-variant ranges,
//! and non-null pointers where the description does not mark the
//! pointer optional.
//!
//! The rules are calibrated against the generator/mutator: any program
//! produced by `Generator::generate` or by `Mutator` from a lint-clean
//! input is lint-clean (a property test in the workspace root asserts
//! this). Violations therefore always indicate either a corrupted
//! corpus file or a mutation-engine bug.

use std::fmt;

use snowplow_prog::{Arg, Call, Prog};
use snowplow_syslang::{ArgPath, BufferKind, IntFormat, PathSegment, Registry, Type, TypeId};

/// Lint rule identifiers, used to tag diagnostics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Rule {
    /// Call has the wrong number of arguments.
    Arity,
    /// Argument tree shape does not match the description type.
    Shape,
    /// Resource reference to a later (or same) call.
    UseBeforeDef,
    /// Resource reference to a call index past the end of the program.
    DanglingRef,
    /// Resource reference to a call that produces no resource.
    NonProducerRef,
    /// Resource reference to a producer of a different resource kind.
    ResourceKindMismatch,
    /// Scalar outside its declared `Int Range`.
    ScalarOutOfRange,
    /// Scalar with bits set above its declared width.
    ScalarWidthOverflow,
    /// `Const`-typed argument carrying the wrong value.
    ConstMismatch,
    /// Length field inconsistent with the measured payload length.
    StaleLength,
    /// Blob buffer shorter than the declared minimum.
    BufferTooShort,
    /// Null pointer where the description does not allow one.
    NullNonOptionalPtr,
    /// Array length outside its declared bounds.
    ArrayArity,
    /// Union discriminant outside the variant list.
    UnionVariantRange,
}

impl Rule {
    /// Stable kebab-case name (used by `sp-lint` output).
    pub fn name(self) -> &'static str {
        match self {
            Rule::Arity => "arity",
            Rule::Shape => "shape",
            Rule::UseBeforeDef => "use-before-def",
            Rule::DanglingRef => "dangling-ref",
            Rule::NonProducerRef => "non-producer-ref",
            Rule::ResourceKindMismatch => "resource-kind-mismatch",
            Rule::ScalarOutOfRange => "scalar-out-of-range",
            Rule::ScalarWidthOverflow => "scalar-width-overflow",
            Rule::ConstMismatch => "const-mismatch",
            Rule::StaleLength => "stale-length",
            Rule::BufferTooShort => "buffer-too-short",
            Rule::NullNonOptionalPtr => "null-non-optional-ptr",
            Rule::ArrayArity => "array-arity",
            Rule::UnionVariantRange => "union-variant-range",
        }
    }
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One lint violation, located by call index and argument path.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Index of the offending call within the program.
    pub call: usize,
    /// Path of the offending argument, when the violation is localized
    /// to one argument (`None` for call-level violations like arity).
    pub path: Option<ArgPath>,
    /// The violated rule.
    pub rule: Rule,
    /// Human-readable, self-contained description.
    pub message: String,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "call {}", self.call)?;
        if let Some(path) = &self.path {
            write!(f, " at {path}")?;
        }
        write!(f, ": [{}] {}", self.rule, self.message)
    }
}

/// A [`Diagnostic`] mapped back to a source line of a corpus file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FileDiagnostic {
    /// 1-based line number of the offending call in the source text.
    pub line: usize,
    /// The underlying diagnostic.
    pub diagnostic: Diagnostic,
}

fn mask(bits: u8) -> u64 {
    if bits >= 64 {
        u64::MAX
    } else {
        (1u64 << bits) - 1
    }
}

struct Linter<'a> {
    reg: &'a Registry,
    prog: &'a Prog,
    out: Vec<Diagnostic>,
}

impl<'a> Linter<'a> {
    fn emit(&mut self, call: usize, path: Option<ArgPath>, rule: Rule, message: String) {
        self.out.push(Diagnostic {
            call,
            path,
            rule,
            message,
        });
    }

    fn lint_call(&mut self, ci: usize, call: &Call) {
        let def = self.reg.syscall(call.def);
        if call.args.len() != def.args.len() {
            self.emit(
                ci,
                None,
                Rule::Arity,
                format!(
                    "{} takes {} argument(s), found {}",
                    def.name,
                    def.args.len(),
                    call.args.len()
                ),
            );
        }
        // Top-level length fields must agree with `Prog::finalize`, which
        // measures the sibling top-level argument.
        for (i, field) in def.args.iter().enumerate() {
            if let Type::Len { target, .. } = self.reg.ty(field.ty) {
                let expected = call.args.get(*target).map_or(0, Arg::payload_len);
                if let Some(Arg::Int { value }) = call.args.get(i) {
                    if *value != expected {
                        self.emit(
                            ci,
                            Some(ArgPath::arg(i)),
                            Rule::StaleLength,
                            format!(
                                "{}: length field is {:#x} but argument {} measures {:#x}",
                                def.name, value, target, expected
                            ),
                        );
                    }
                }
            }
        }
        for (i, (field, arg)) in def.args.iter().zip(&call.args).enumerate() {
            self.lint_arg(ci, field.ty, arg, ArgPath::arg(i));
        }
    }

    fn lint_arg(&mut self, ci: usize, ty: TypeId, arg: &Arg, path: ArgPath) {
        let call_name = self.reg.syscall(self.prog.calls[ci].def).name;
        match (self.reg.ty(ty), arg) {
            (Type::Int { bits, format }, Arg::Int { value }) => match format {
                // Range values are generated and clamped unmasked, so the
                // declared range is the whole contract (it may exceed the
                // nominal width, e.g. sign-extended sentinels).
                IntFormat::Range { lo, hi } => {
                    if value < lo || value > hi {
                        self.emit(
                            ci,
                            Some(path),
                            Rule::ScalarOutOfRange,
                            format!(
                                "{call_name}: value {value:#x} outside declared range [{lo:#x}, {hi:#x}]"
                            ),
                        );
                    }
                }
                // Any/Enum values are always width-masked by the
                // generator and mutator. Enum *membership* is not
                // enforced: the instantiator intentionally draws random
                // non-member values at low probability.
                IntFormat::Any | IntFormat::Enum { .. } => {
                    if value & !mask(*bits) != 0 {
                        self.emit(
                            ci,
                            Some(path),
                            Rule::ScalarWidthOverflow,
                            format!("{call_name}: value {value:#x} exceeds {bits}-bit width"),
                        );
                    }
                }
            },
            // Flags words are width-masked; arbitrary bit combinations
            // within the width are legal (the instantiator ORs and
            // perturbs them).
            (Type::Flags { bits, .. }, Arg::Int { value }) => {
                if value & !mask(*bits) != 0 {
                    self.emit(
                        ci,
                        Some(path),
                        Rule::ScalarWidthOverflow,
                        format!("{call_name}: flags {value:#x} exceed {bits}-bit width"),
                    );
                }
            }
            (
                Type::Const {
                    value: expected, ..
                },
                Arg::Int { value },
            ) => {
                if value != expected {
                    self.emit(
                        ci,
                        Some(path),
                        Rule::ConstMismatch,
                        format!("{call_name}: constant must be {expected:#x}, found {value:#x}"),
                    );
                }
            }
            // The value of a Len field is checked by its *container*
            // (call or struct), which can see the sibling it measures.
            (Type::Len { .. }, Arg::Int { .. }) => {}
            (Type::Ptr { optional, elem, .. }, Arg::Ptr { inner, .. }) => match inner {
                Some(pointee) => {
                    self.lint_arg(ci, *elem, pointee, path.child(PathSegment::Deref));
                }
                None => {
                    if !optional {
                        self.emit(
                            ci,
                            Some(path),
                            Rule::NullNonOptionalPtr,
                            format!("{call_name}: null pointer where the type is not optional"),
                        );
                    }
                }
            },
            (Type::Buffer { kind }, Arg::Data { bytes }) => {
                // Only the Blob minimum is enforced: mutation may append
                // past `max_len` (allowed — the kernel truncates), but
                // nothing ever shrinks a buffer below `min_len`.
                if let BufferKind::Blob { min_len, .. } = kind {
                    if bytes.len() < *min_len {
                        self.emit(
                            ci,
                            Some(path),
                            Rule::BufferTooShort,
                            format!(
                                "{call_name}: buffer of {} byte(s) below declared minimum {min_len}",
                                bytes.len()
                            ),
                        );
                    }
                }
            }
            (
                Type::Array {
                    elem,
                    min_len,
                    max_len,
                },
                Arg::Group { inner },
            ) => {
                if inner.len() < *min_len || inner.len() > *max_len {
                    self.emit(
                        ci,
                        Some(path.clone()),
                        Rule::ArrayArity,
                        format!(
                            "{call_name}: array of {} element(s) outside [{min_len}, {max_len}]",
                            inner.len()
                        ),
                    );
                }
                for (i, a) in inner.iter().enumerate() {
                    self.lint_arg(ci, *elem, a, path.child(PathSegment::Elem(i as u16)));
                }
            }
            (Type::Struct { name, fields }, Arg::Group { inner }) => {
                if inner.len() != fields.len() {
                    self.emit(
                        ci,
                        Some(path),
                        Rule::Shape,
                        format!(
                            "{call_name}: struct {name} has {} field(s), found {}",
                            fields.len(),
                            inner.len()
                        ),
                    );
                    return;
                }
                // Struct-level length fields measure sibling fields.
                for (i, field) in fields.iter().enumerate() {
                    if let Type::Len { target, .. } = self.reg.ty(field.ty) {
                        let expected = inner.get(*target).map_or(0, Arg::payload_len);
                        if let Some(Arg::Int { value }) = inner.get(i) {
                            if *value != expected {
                                self.emit(
                                    ci,
                                    Some(path.child(PathSegment::Field(i as u16))),
                                    Rule::StaleLength,
                                    format!(
                                        "{call_name}: {name}.{} is {:#x} but field {} measures {:#x}",
                                        field.name, value, target, expected
                                    ),
                                );
                            }
                        }
                    }
                }
                for (i, (field, a)) in fields.iter().zip(inner).enumerate() {
                    self.lint_arg(ci, field.ty, a, path.child(PathSegment::Field(i as u16)));
                }
            }
            (Type::Union { name, variants }, Arg::Union { variant, inner }) => {
                match variants.get(*variant as usize) {
                    Some(v) => {
                        self.lint_arg(ci, v.ty, inner, path.child(PathSegment::Variant(*variant)));
                    }
                    None => {
                        self.emit(
                            ci,
                            Some(path),
                            Rule::UnionVariantRange,
                            format!(
                                "{call_name}: union {name} has {} variant(s), discriminant is {variant}",
                                variants.len()
                            ),
                        );
                    }
                }
            }
            (Type::Resource { kind, .. }, Arg::Res { source }) => {
                if let snowplow_prog::ResSource::Ref(r) = source {
                    let kind_name = self.reg.resource(*kind).name;
                    if *r >= self.prog.len() {
                        self.emit(
                            ci,
                            Some(path),
                            Rule::DanglingRef,
                            format!(
                                "{call_name}: {kind_name} reference to call {r}, but the program has {} call(s)",
                                self.prog.len()
                            ),
                        );
                    } else if *r >= ci {
                        self.emit(
                            ci,
                            Some(path),
                            Rule::UseBeforeDef,
                            format!(
                                "{call_name}: {kind_name} reference to call {r} which has not executed yet"
                            ),
                        );
                    } else {
                        let producer = self.reg.syscall(self.prog.calls[*r].def);
                        match producer.ret {
                            None => self.emit(
                                ci,
                                Some(path),
                                Rule::NonProducerRef,
                                format!(
                                    "{call_name}: {kind_name} reference to call {r} ({}), which produces nothing",
                                    producer.name
                                ),
                            ),
                            Some(produced) if produced != *kind => self.emit(
                                ci,
                                Some(path),
                                Rule::ResourceKindMismatch,
                                format!(
                                    "{call_name}: expects {kind_name}, but call {r} ({}) produces {}",
                                    producer.name,
                                    self.reg.resource(produced).name
                                ),
                            ),
                            Some(_) => {}
                        }
                    }
                }
            }
            (ty, arg) => {
                self.emit(
                    ci,
                    Some(path),
                    Rule::Shape,
                    format!(
                        "{call_name}: {} type incompatible with value {arg:?}",
                        ty.kind_name()
                    ),
                );
            }
        }
    }
}

/// Lints `prog` against `reg`, returning every violation found, in
/// program order. An empty result means the program is lint-clean.
pub fn lint(reg: &Registry, prog: &Prog) -> Vec<Diagnostic> {
    let mut linter = Linter {
        reg,
        prog,
        out: Vec::new(),
    };
    for (ci, call) in prog.calls.iter().enumerate() {
        linter.lint_call(ci, call);
    }
    linter.out
}

/// [`lint`] collapsed to a `Result`: `Err` carries the first diagnostic,
/// rendered. This is the function installed as `snowplow-prog`'s debug
/// mutation validator and used by the corpus ingestion gate.
pub fn first_error(reg: &Registry, prog: &Prog) -> Result<(), String> {
    match lint(reg, prog).into_iter().next() {
        None => Ok(()),
        Some(d) => Err(d.to_string()),
    }
}

/// Parses `text` as a syz-format program and lints it, mapping each
/// diagnostic back to the 1-based source line of the offending call.
///
/// Blank lines and `#` comments are skipped by the parser, so call `k`
/// of the parsed program sits on the `k`-th *significant* line.
pub fn lint_text(
    reg: &Registry,
    text: &str,
) -> Result<Vec<FileDiagnostic>, snowplow_prog::parse::ParseError> {
    let prog = Prog::parse(reg, text)?;
    let call_lines: Vec<usize> = text
        .lines()
        .enumerate()
        .filter(|(_, l)| {
            let t = l.trim();
            !t.is_empty() && !t.starts_with('#')
        })
        .map(|(i, _)| i + 1)
        .collect();
    Ok(lint(reg, &prog)
        .into_iter()
        .map(|diagnostic| FileDiagnostic {
            line: call_lines.get(diagnostic.call).copied().unwrap_or(0),
            diagnostic,
        })
        .collect())
}

#[cfg(test)]
mod tests {
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use snowplow_prog::gen::Generator;
    use snowplow_prog::{Mutator, ResSource};
    use snowplow_syslang::{builtin, Field, RegistryBuilder};

    use super::*;

    #[test]
    fn generated_programs_are_lint_clean() {
        let reg = builtin::linux_sim();
        let generator = Generator::new(&reg);
        for seed in 0..60u64 {
            let mut rng = StdRng::seed_from_u64(seed);
            let prog = generator.generate(&mut rng, 1 + (seed as usize % 10));
            let diags = lint(&reg, &prog);
            assert!(
                diags.is_empty(),
                "seed {seed}: {}\n{}",
                diags[0],
                prog.display(&reg)
            );
        }
    }

    #[test]
    fn mutated_programs_stay_lint_clean() {
        let reg = builtin::linux_sim();
        let generator = Generator::new(&reg);
        let mut mutator = Mutator::new(&reg);
        for seed in 0..20u64 {
            let mut rng = StdRng::seed_from_u64(1000 + seed);
            let mut prog = generator.generate(&mut rng, 5);
            for step in 0..10 {
                prog = mutator.mutate(&mut rng, &prog).0;
                let diags = lint(&reg, &prog);
                assert!(diags.is_empty(), "seed {seed} step {step}: {}", diags[0]);
            }
        }
    }

    /// A tiny registry with one resource, one producer, one consumer,
    /// and one scalar-heavy call — enough to trigger every rule.
    fn tiny() -> Registry {
        let mut b = RegistryBuilder::new();
        let fd = b.resource("fd", &[0xffff_ffff]);
        let tok = b.resource("tok", &[0]);
        let r_in = b.res_in(fd);
        let t_in = b.res_in(tok);
        let rng = b.int_range(10, 20, 32);
        b.syscall("mk_fd", "test", &[], Some(fd));
        b.syscall("mk_tok", "test", &[], Some(tok));
        b.syscall("noret", "test", &[Field::new("x", rng)], None);
        b.syscall(
            "use_fd",
            "test",
            &[Field::new("fd", r_in), Field::new("tok", t_in)],
            None,
        );
        b.build()
    }

    fn call(reg: &Registry, name: &str, args: Vec<Arg>) -> Call {
        Call {
            def: reg.syscall_by_name(name).unwrap(),
            args,
        }
    }

    fn res(r: usize) -> Arg {
        Arg::Res {
            source: ResSource::Ref(r),
        }
    }

    #[test]
    fn resource_reference_rules() {
        let reg = tiny();
        let ok = Prog {
            calls: vec![
                call(&reg, "mk_fd", vec![]),
                call(&reg, "mk_tok", vec![]),
                call(&reg, "use_fd", vec![res(0), res(1)]),
            ],
        };
        assert!(lint(&reg, &ok).is_empty());

        let dangling = Prog {
            calls: vec![
                call(&reg, "mk_tok", vec![]),
                call(&reg, "use_fd", vec![res(7), res(0)]),
            ],
        };
        let d = lint(&reg, &dangling);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].rule, Rule::DanglingRef);
        assert_eq!(d[0].call, 1);
        assert_eq!(d[0].path, Some(ArgPath::arg(0)));

        let forward = Prog {
            calls: vec![
                call(&reg, "mk_tok", vec![]),
                call(&reg, "use_fd", vec![res(2), res(0)]),
                call(&reg, "mk_fd", vec![]),
            ],
        };
        assert_eq!(lint(&reg, &forward)[0].rule, Rule::UseBeforeDef);

        let nonproducer = Prog {
            calls: vec![
                call(&reg, "noret", vec![Arg::int(15)]),
                call(&reg, "mk_tok", vec![]),
                call(&reg, "use_fd", vec![res(0), res(1)]),
            ],
        };
        assert_eq!(lint(&reg, &nonproducer)[0].rule, Rule::NonProducerRef);

        let wrong_kind = Prog {
            calls: vec![
                call(&reg, "mk_tok", vec![]),
                call(&reg, "mk_fd", vec![]),
                call(&reg, "use_fd", vec![res(0), res(1)]),
            ],
        };
        let d = lint(&reg, &wrong_kind);
        // Both arguments reference the wrong producer kind.
        assert_eq!(d.len(), 2);
        assert!(d.iter().all(|d| d.rule == Rule::ResourceKindMismatch));
        // Prog::validate does NOT catch kind mismatches — the linter is
        // strictly stronger here.
        assert!(wrong_kind.validate(&reg).is_ok());
    }

    #[test]
    fn scalar_rules() {
        let reg = tiny();
        let out_of_range = Prog {
            calls: vec![call(&reg, "noret", vec![Arg::int(21)])],
        };
        assert_eq!(lint(&reg, &out_of_range)[0].rule, Rule::ScalarOutOfRange);
        let in_range = Prog {
            calls: vec![call(&reg, "noret", vec![Arg::int(20)])],
        };
        assert!(lint(&reg, &in_range).is_empty());
    }

    #[test]
    fn arity_and_shape_rules() {
        let reg = tiny();
        let wrong_arity = Prog {
            calls: vec![call(&reg, "noret", vec![])],
        };
        assert_eq!(lint(&reg, &wrong_arity)[0].rule, Rule::Arity);
        let wrong_shape = Prog {
            calls: vec![call(&reg, "noret", vec![Arg::Data { bytes: vec![1] }])],
        };
        assert_eq!(lint(&reg, &wrong_shape)[0].rule, Rule::Shape);
    }

    #[test]
    fn stale_length_is_detected_and_finalize_clears_it() {
        let reg = builtin::linux_sim();
        let generator = Generator::new(&reg);
        // Find a generated program that carries a nonzero length field,
        // then corrupt it.
        for seed in 0..200u64 {
            let mut rng = StdRng::seed_from_u64(seed);
            let mut prog = generator.generate(&mut rng, 6);
            let mut corrupted = false;
            'outer: for call in &mut prog.calls {
                let def = reg.syscall(call.def);
                for (i, f) in def.args.iter().enumerate() {
                    if let Type::Len { .. } = reg.ty(f.ty) {
                        if let Some(Arg::Int { value }) = call.args.get_mut(i) {
                            *value = value.wrapping_add(0x1234);
                            corrupted = true;
                            break 'outer;
                        }
                    }
                }
            }
            if !corrupted {
                continue;
            }
            let diags = lint(&reg, &prog);
            assert!(diags.iter().any(|d| d.rule == Rule::StaleLength));
            prog.finalize(&reg);
            assert!(lint(&reg, &prog).is_empty());
            return;
        }
        panic!("no generated program with a top-level length field");
    }

    #[test]
    fn lint_text_maps_diagnostics_to_source_lines() {
        let reg = tiny();
        let text = "# a corrupted corpus entry\n\
                    mk_tok()\n\
                    \n\
                    use_fd(r7, r0)\n";
        let diags = lint_text(&reg, text).expect("parses");
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].line, 4);
        assert_eq!(diags[0].diagnostic.rule, Rule::DanglingRef);
        assert_eq!(diags[0].diagnostic.call, 1);
    }

    #[test]
    fn diagnostics_render_with_location() {
        let reg = tiny();
        let prog = Prog {
            calls: vec![
                call(&reg, "mk_tok", vec![]),
                call(&reg, "use_fd", vec![res(9), res(0)]),
            ],
        };
        let d = &lint(&reg, &prog)[0];
        let s = d.to_string();
        assert!(s.contains("call 1"), "{s}");
        assert!(s.contains("dangling-ref"), "{s}");
        assert!(s.contains("fd"), "{s}");
    }
}
