//! Static analyses over Snowplow's programs and simulated kernels.
//!
//! Three passes, each wired into an existing layer of the workspace:
//!
//! 1. [`lint`] — a semantic checker over [`snowplow_prog::Prog`] against a
//!    [`snowplow_syslang::Registry`]: resource use-before-definition,
//!    dangling resource references, union-variant and shape mismatches,
//!    out-of-range scalar constants, stale length fields. Exposed as a
//!    library pass, enforced as a debug assertion after every mutation
//!    (via [`install_debug_validator`]), used by the fuzzer's corpus to
//!    reject malformed programs on ingestion, and shipped as the
//!    `sp-lint` binary for corpus files.
//! 2. [`cfg`] — analyses on the kernel's static CFG: dominator and
//!    post-dominator trees, unreachable-block detection, and a
//!    constant-propagation pass over branch predicates that proves
//!    branches statically always- or never-taken. The directed fuzzer
//!    uses it to reject unreachable targets in O(CFG) time, and the
//!    campaign's frontier-target computation filters statically-dead
//!    blocks before they reach a PMM query.
//! 3. [`oracle`] — a reachability oracle asserting that every planted
//!    bug block is statically reachable in every kernel version.
//! 4. [`interval`] — value-range abstract interpretation per handler: a
//!    worklist fixpoint over branch predicates with widening, a
//!    `(handler, target)` verdict solver (`ProvedUnreachable` with proof
//!    kind / `ReachableWithWitness` with concrete argument values /
//!    `Unknown`), and infeasible-edge diagnostics for `sp-lint
//!    --intervals`.
//! 5. [`cache`] — the process-shared [`AnalysisCache`] memoizing dead
//!    blocks, dominator trees, per-handler fixpoints, and the
//!    predicate-pruned distance CFG per kernel build.

pub mod cache;
pub mod cfg;
pub mod interval;
pub mod lint;
pub mod oracle;

pub use cache::{AnalysisCache, CacheStats, PrunedCfg};
pub use cfg::{
    branch_status, dominators, post_dominators, reachable_blocks, statically_dead_blocks,
    BranchStatus, DomTree,
};
pub use interval::{
    analyze_handler, classify, type_interval, type_len_interval, AbsState, ArgConstraint,
    ConstraintKind, EdgeCut, EdgeSide, HandlerAnalysis, InfeasibleEdge, Interval, UnreachableProof,
    Verdict,
};
pub use lint::{first_error, lint, lint_text, Diagnostic, FileDiagnostic, Rule};
pub use oracle::{assert_all_bugs_reachable, check_bug_reachability};

/// Installs the program linter as `snowplow-prog`'s debug-build mutation
/// validator: every `Mutator::mutate`/`insert_call`/`remove_call` output
/// is linted, and a violation panics with the first diagnostic. Catches
/// mutator bugs (e.g. a dangling resource reference after `remove_call`)
/// at the source instead of corrupting the corpus. Idempotent.
pub fn install_debug_validator() {
    snowplow_prog::set_debug_validator(lint::first_error);
}
