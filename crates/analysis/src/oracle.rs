//! The bug-reachability oracle.
//!
//! Every injected bug is attached to a basic block; a bug whose block is
//! statically unreachable could never fire, which would silently skew
//! every crash experiment (Tables 2–5). The oracle cross-checks the bug
//! registry against the CFG analyses: each bug block must exist, be
//! reachable from its handler entry over raw CFG edges, and survive
//! proven-branch pruning ([`crate::cfg::statically_dead_blocks`]).

use snowplow_kernel::Kernel;

use crate::cfg::{reachable_blocks, statically_dead_blocks};

/// Checks every planted bug block of `kernel`, returning one message per
/// violation (empty = all bugs statically reachable).
pub fn check_bug_reachability(kernel: &Kernel) -> Vec<String> {
    let reachable = reachable_blocks(kernel);
    let dead = statically_dead_blocks(kernel);
    let mut violations = Vec::new();
    for bug in kernel.bugs().iter() {
        let block = bug.block;
        if block.index() >= kernel.block_count() {
            violations.push(format!(
                "bug {} ({}): block {block:?} does not exist ({} blocks total)",
                bug.id.0,
                bug.description,
                kernel.block_count()
            ));
        } else if !reachable.contains(&block) {
            violations.push(format!(
                "bug {} ({}): block {block:?} is disconnected from every handler entry",
                bug.id.0, bug.description
            ));
        } else if dead.contains(&block) {
            violations.push(format!(
                "bug {} ({}): block {block:?} sits behind a statically-unsatisfiable branch",
                bug.id.0, bug.description
            ));
        }
    }
    violations
}

/// [`check_bug_reachability`] as a `Result`, for use in tests and bench
/// harness preambles.
pub fn assert_all_bugs_reachable(kernel: &Kernel) -> Result<(), String> {
    let violations = check_bug_reachability(kernel);
    if violations.is_empty() {
        Ok(())
    } else {
        Err(format!(
            "{} unreachable bug block(s) in {}:\n{}",
            violations.len(),
            kernel.version(),
            violations.join("\n")
        ))
    }
}

#[cfg(test)]
mod tests {
    use snowplow_kernel::KernelVersion;

    use super::*;

    #[test]
    fn all_planted_bugs_are_reachable_in_every_kernel_version() {
        for version in [
            KernelVersion::V6_8,
            KernelVersion::V6_9,
            KernelVersion::V6_10,
        ] {
            let kernel = Kernel::build(version);
            assert!(!kernel.bugs().is_empty());
            if let Err(report) = assert_all_bugs_reachable(&kernel) {
                panic!("{report}");
            }
        }
    }
}
