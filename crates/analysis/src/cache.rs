//! Shared, process-wide cache of static analysis results.
//!
//! Dominator trees, dead-block sets, and per-handler interval fixpoints
//! are pure functions of the kernel build, yet the directed fuzzer used
//! to recompute them per query. [`AnalysisCache`] memoizes them per
//! kernel *fingerprint* (version + block count + edge count — two
//! kernels built with different [`HandlerGenConfig`] tunings of the same
//! version get distinct entries) with per-handler lazy slots, so the
//! first directed query against a kernel pays for exactly the handlers
//! it touches and every later query is a map lookup.
//!
//! Hit/miss counters are kept on the cache itself (queryable via
//! [`AnalysisCache::stats`]) rather than emitted into campaign
//! telemetry: cache hits depend on process history, and campaign
//! telemetry snapshots must stay a pure function of `(kernel, config,
//! seed)`.
//!
//! [`HandlerGenConfig`]: snowplow_kernel::HandlerGenConfig

use std::collections::{HashMap, HashSet, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

use snowplow_kernel::{BlockId, Kernel, KernelVersion};
use snowplow_syslang::SyscallId;

use crate::cfg::{dominators, statically_dead_blocks, DomTree};
use crate::interval::{analyze_handler, classify, HandlerAnalysis, Verdict};

/// Identifies one kernel build. Version alone is not enough: tests build
/// non-default kernels (probe configs, custom bug plans) of the same
/// version, and results must never leak across structurally different
/// CFGs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct Fingerprint {
    version: KernelVersion,
    block_count: usize,
    edge_count: usize,
}

impl Fingerprint {
    fn of(kernel: &Kernel) -> Self {
        Fingerprint {
            version: kernel.version(),
            block_count: kernel.block_count(),
            edge_count: kernel.cfg().edge_count(),
        }
    }
}

/// The feasible-edge CFG left after interval pruning: forward and
/// reverse adjacency over the whole kernel, plus entry distances.
#[derive(Debug)]
pub struct PrunedCfg {
    /// Feasible successors per block (indexed by block id).
    pub fwd: Vec<Vec<BlockId>>,
    /// Feasible predecessors per block.
    pub rev: Vec<Vec<BlockId>>,
    /// Predicate-aware BFS distance from the owning handler's entry, or
    /// `None` for infeasible blocks.
    pub entry_dist: Vec<Option<u32>>,
}

impl PrunedCfg {
    /// Multi-source BFS *backwards* over feasible edges: distance from
    /// each block to the nearest block in `sources`, written into `out`
    /// (`None` = no feasible path). Reuses the caller's buffer to keep
    /// the campaign hot loop allocation-free.
    pub fn distance_to_sources(&self, sources: &[BlockId], out: &mut Vec<Option<u32>>) {
        out.clear();
        out.resize(self.fwd.len(), None);
        let mut queue = VecDeque::new();
        for &s in sources {
            if s.index() < out.len() && out[s.index()].is_none() {
                out[s.index()] = Some(0);
                queue.push_back(s);
            }
        }
        while let Some(b) = queue.pop_front() {
            let d = out[b.index()].expect("queued blocks have distances");
            for &p in &self.rev[b.index()] {
                if out[p.index()].is_none() {
                    out[p.index()] = Some(d + 1);
                    queue.push_back(p);
                }
            }
        }
    }
}

/// Lazily-filled analysis results for one kernel build.
#[derive(Default)]
struct KernelEntry {
    dead: OnceLock<Arc<HashSet<BlockId>>>,
    dom: OnceLock<Arc<DomTree>>,
    handlers: Vec<OnceLock<Arc<HandlerAnalysis>>>,
    infeasible: OnceLock<Arc<HashSet<BlockId>>>,
    pruned: OnceLock<Arc<PrunedCfg>>,
}

/// Cache hit/miss counts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheStats {
    /// Queries answered from a filled slot.
    pub hits: u64,
    /// Queries that had to compute.
    pub misses: u64,
}

impl CacheStats {
    /// Fraction of queries served from the cache (0 when empty).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// Process-shared memo of per-kernel static analyses. Cheap to query
/// concurrently; computation happens at most once per `(kernel,
/// handler)` slot.
#[derive(Default)]
pub struct AnalysisCache {
    entries: Mutex<HashMap<Fingerprint, Arc<KernelEntry>>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl AnalysisCache {
    /// An empty cache (tests; production code uses [`Self::shared`]).
    pub fn new() -> Self {
        AnalysisCache::default()
    }

    /// The process-wide shared instance.
    pub fn shared() -> &'static AnalysisCache {
        static SHARED: OnceLock<AnalysisCache> = OnceLock::new();
        SHARED.get_or_init(AnalysisCache::new)
    }

    /// Hit/miss counters accumulated so far.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
        }
    }

    fn entry(&self, kernel: &Kernel) -> Arc<KernelEntry> {
        let fp = Fingerprint::of(kernel);
        let mut map = self.entries.lock().expect("analysis cache poisoned");
        map.entry(fp)
            .or_insert_with(|| {
                Arc::new(KernelEntry {
                    handlers: (0..kernel.handlers().len())
                        .map(|_| OnceLock::new())
                        .collect(),
                    ..KernelEntry::default()
                })
            })
            .clone()
    }

    fn get_or_init<T: Clone>(&self, slot: &OnceLock<T>, init: impl FnOnce() -> T) -> T {
        if let Some(v) = slot.get() {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return v.clone();
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        slot.get_or_init(init).clone()
    }

    /// Cached [`statically_dead_blocks`].
    pub fn dead_blocks(&self, kernel: &Kernel) -> Arc<HashSet<BlockId>> {
        let e = self.entry(kernel);
        self.get_or_init(&e.dead, || Arc::new(statically_dead_blocks(kernel)))
    }

    /// Cached whole-kernel [`dominators`] tree.
    pub fn dominators(&self, kernel: &Kernel) -> Arc<DomTree> {
        let e = self.entry(kernel);
        self.get_or_init(&e.dom, || Arc::new(dominators(kernel)))
    }

    /// Cached interval fixpoint for one handler.
    pub fn handler_analysis(&self, kernel: &Kernel, id: SyscallId) -> Arc<HandlerAnalysis> {
        let e = self.entry(kernel);
        self.get_or_init(&e.handlers[id.index()], || {
            Arc::new(analyze_handler(
                kernel.registry(),
                kernel.blocks(),
                kernel.handler(id),
            ))
        })
    }

    /// Blocks no lint-clean program can reach: the statically dead set
    /// plus every handler's interval-infeasible blocks. Forces analysis
    /// of all handlers on first use.
    pub fn infeasible_blocks(&self, kernel: &Kernel) -> Arc<HashSet<BlockId>> {
        let e = self.entry(kernel);
        if let Some(v) = e.infeasible.get() {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return v.clone();
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        let mut set: HashSet<BlockId> = (*self.dead_blocks(kernel)).clone();
        for h in kernel.handlers() {
            let a = self.handler_analysis(kernel, h.syscall);
            set.extend(a.infeasible_blocks());
        }
        e.infeasible.get_or_init(|| Arc::new(set)).clone()
    }

    /// The predicate-pruned CFG with entry distances. Forces analysis of
    /// all handlers on first use.
    pub fn pruned_cfg(&self, kernel: &Kernel) -> Arc<PrunedCfg> {
        let e = self.entry(kernel);
        if let Some(v) = e.pruned.get() {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return v.clone();
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        let n = kernel.block_count();
        let mut fwd: Vec<Vec<BlockId>> = vec![Vec::new(); n];
        let mut rev: Vec<Vec<BlockId>> = vec![Vec::new(); n];
        for h in kernel.handlers() {
            let a = self.handler_analysis(kernel, h.syscall);
            for &b in &h.blocks {
                for &s in a.feasible_successors(b) {
                    fwd[b.index()].push(s);
                    rev[s.index()].push(b);
                }
            }
        }
        // Multi-source BFS from handler entries over feasible edges.
        let mut entry_dist: Vec<Option<u32>> = vec![None; n];
        let mut queue = VecDeque::new();
        for h in kernel.handlers() {
            if entry_dist[h.entry.index()].is_none() {
                entry_dist[h.entry.index()] = Some(0);
                queue.push_back(h.entry);
            }
        }
        while let Some(b) = queue.pop_front() {
            let d = entry_dist[b.index()].expect("queued blocks have distances");
            for &s in &fwd[b.index()] {
                if entry_dist[s.index()].is_none() {
                    entry_dist[s.index()] = Some(d + 1);
                    queue.push_back(s);
                }
            }
        }
        e.pruned
            .get_or_init(|| {
                Arc::new(PrunedCfg {
                    fwd,
                    rev,
                    entry_dist,
                })
            })
            .clone()
    }

    /// Classifies `target`: unreachable with proof, reachable with a
    /// concrete witness, or unknown. Built from the cached per-handler
    /// analysis; the verdict itself is cheap and not memoized.
    pub fn verdict(&self, kernel: &Kernel, target: BlockId) -> Verdict {
        if target.index() >= kernel.block_count() {
            return Verdict::ProvedUnreachable(crate::interval::UnreachableProof::OutOfRange);
        }
        let handler = kernel.block(target).handler;
        let h = kernel.handler(handler);
        let a = self.handler_analysis(kernel, handler);
        let dom = self.dominators(kernel);
        let dead = self.dead_blocks(kernel);
        classify(
            kernel.registry(),
            kernel.blocks(),
            h,
            &a,
            &dom,
            &dead,
            target,
        )
    }

    /// Total fixpoint iterations across all handlers of `kernel`
    /// (deterministic; used as a telemetry gauge).
    pub fn total_fixpoint_iterations(&self, kernel: &Kernel) -> u64 {
        kernel
            .handlers()
            .iter()
            .map(|h| self.handler_analysis(kernel, h.syscall).iterations)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use snowplow_kernel::KernelVersion;

    #[test]
    fn cache_hit_rate_warms_up() {
        let kernel = Kernel::build(KernelVersion::V6_8);
        let cache = AnalysisCache::new();
        // Cold pass: everything misses.
        cache.dead_blocks(&kernel);
        cache.dominators(&kernel);
        let h0 = kernel.handlers()[0].syscall;
        cache.handler_analysis(&kernel, h0);
        let cold = cache.stats();
        assert_eq!(cold.hits, 0);
        assert_eq!(cold.misses, 3);
        // Warm pass: everything hits.
        cache.dead_blocks(&kernel);
        cache.dominators(&kernel);
        cache.handler_analysis(&kernel, h0);
        let warm = cache.stats();
        assert_eq!(warm.misses, 3);
        assert_eq!(warm.hits, 3);
        assert!(warm.hit_rate() >= 0.5);
    }

    #[test]
    fn cached_results_match_uncached() {
        let kernel = Kernel::build(KernelVersion::V6_8);
        let cache = AnalysisCache::new();
        assert_eq!(*cache.dead_blocks(&kernel), statically_dead_blocks(&kernel));
        let h = &kernel.handlers()[3];
        let fresh = analyze_handler(kernel.registry(), kernel.blocks(), h);
        let cached = cache.handler_analysis(&kernel, h.syscall);
        for &b in &h.blocks {
            assert_eq!(fresh.is_feasible(b), cached.is_feasible(b));
            assert_eq!(fresh.state(b), cached.state(b));
        }
    }

    #[test]
    fn fingerprints_keep_kernel_builds_apart() {
        let a = Kernel::build(KernelVersion::V6_8);
        let b = Kernel::build(KernelVersion::V6_10);
        let cache = AnalysisCache::new();
        let da = cache.dead_blocks(&a);
        let db = cache.dead_blocks(&b);
        // Different versions drift differently; the cache must not serve
        // one kernel's set for the other.
        assert_eq!(*da, statically_dead_blocks(&a));
        assert_eq!(*db, statically_dead_blocks(&b));
        assert_eq!(cache.stats().misses, 2);
    }

    #[test]
    fn pruned_cfg_entry_distances_cover_feasible_blocks() {
        let kernel = Kernel::build(KernelVersion::V6_8);
        let cache = AnalysisCache::new();
        let pruned = cache.pruned_cfg(&kernel);
        let infeasible = cache.infeasible_blocks(&kernel);
        for h in kernel.handlers() {
            assert_eq!(pruned.entry_dist[h.entry.index()], Some(0));
            for &b in &h.blocks {
                if infeasible.contains(&b) {
                    assert_eq!(
                        pruned.entry_dist[b.index()],
                        None,
                        "infeasible block {b:?} has an entry distance"
                    );
                }
            }
        }
        // Reverse BFS from an arbitrary feasible block reaches its entry.
        let target = kernel.handlers()[0].entry;
        let mut out = Vec::new();
        pruned.distance_to_sources(&[target], &mut out);
        assert_eq!(out[target.index()], Some(0));
    }

    #[test]
    fn shared_cache_is_a_singleton() {
        let a = AnalysisCache::shared() as *const _;
        let b = AnalysisCache::shared() as *const _;
        assert_eq!(a, b);
    }
}
