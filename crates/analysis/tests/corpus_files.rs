//! The checked-in corpus samples under `corpus/` are linted as files:
//! the clean seed must produce no diagnostics, and the hand-broken
//! dangling-reference sample must be reported with the exact call
//! index, source line, and rule — the `sp-lint` contract.

use snowplow_analysis::{lint_text, Rule};
use snowplow_syslang::builtin;

const CLEAN: &str = include_str!(concat!(
    env!("CARGO_MANIFEST_DIR"),
    "/../../corpus/seed_clean.prog"
));
const BROKEN: &str = include_str!(concat!(
    env!("CARGO_MANIFEST_DIR"),
    "/../../corpus/broken_dangling.prog"
));

#[test]
fn clean_seed_has_no_diagnostics() {
    let reg = builtin::linux_sim();
    let diags = lint_text(&reg, CLEAN).expect("clean seed parses");
    assert!(diags.is_empty(), "{diags:?}");
}

#[test]
fn broken_seed_reports_dangling_ref_at_call_and_line() {
    let reg = builtin::linux_sim();
    let diags = lint_text(&reg, BROKEN).expect("broken seed still parses");
    assert_eq!(diags.len(), 1, "{diags:?}");
    let d = &diags[0];
    // `close(r7)` is the third call (index 2) on source line 6.
    assert_eq!(d.diagnostic.rule, Rule::DanglingRef);
    assert_eq!(d.diagnostic.call, 2);
    assert_eq!(d.line, 6);
    let rendered = format!("{}", d.diagnostic);
    assert!(rendered.contains("call 2"), "{rendered}");
    assert!(rendered.contains("dangling-ref"), "{rendered}");
}
