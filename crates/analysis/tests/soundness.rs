//! Soundness harness for the interval abstract interpreter (DESIGN.md
//! §10): concrete executions are a ground truth the static analysis must
//! over-approximate. For random (and randomly mutated) lint-clean
//! programs:
//!
//! * every concretely-executed block must carry a fixpoint state — a
//!   block the analysis calls infeasible that an execution then reaches
//!   would be an unsound cut;
//! * at every executed block, each argument value (and buffer length)
//!   that concretely resolves at a constrained path must lie inside the
//!   static interval for that path.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use snowplow_analysis::AnalysisCache;
use snowplow_kernel::{Kernel, KernelVersion, Vm};
use snowplow_prog::arg::ArgView;
use snowplow_prog::gen::Generator;
use snowplow_prog::Mutator;

fn kernel() -> &'static Kernel {
    use std::sync::OnceLock;
    static K: OnceLock<Kernel> = OnceLock::new();
    K.get_or_init(|| Kernel::build(KernelVersion::V6_8))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// No concretely-reached block may be interval-infeasible, and
    /// observed argument values stay inside the static intervals.
    #[test]
    fn prop_intervals_over_approximate_concrete_executions(
        seed in any::<u64>(),
        calls in 1usize..8,
        mutations in 0usize..6,
    ) {
        let k = kernel();
        let reg = k.registry();
        let cache = AnalysisCache::shared();
        let mut rng = StdRng::seed_from_u64(seed);
        let mut prog = Generator::new(reg).generate(&mut rng, calls);
        let mut mutator = Mutator::new(reg);
        for _ in 0..mutations {
            prog = mutator.mutate(&mut rng, &prog).0;
        }
        // The soundness contract covers lint-clean programs (the same
        // bar the corpus enforces on ingestion).
        prop_assert!(snowplow_analysis::lint(reg, &prog).is_empty());

        let mut vm = Vm::new(k);
        let exec = vm.execute(&prog);
        for (call, trace) in prog.calls.iter().zip(&exec.call_traces) {
            let analysis = cache.handler_analysis(k, call.def);
            for &b in trace {
                let Some(st) = analysis.state(b) else {
                    prop_assert!(
                        false,
                        "executed block {b:?} of {} is marked infeasible",
                        reg.syscall(call.def).name
                    );
                    unreachable!();
                };
                for (path, iv) in &st.vals {
                    if let Some(ArgView::Int(v)) = call.view_at(path) {
                        prop_assert!(
                            iv.contains(v),
                            "block {b:?}: {path} = {v:#x} outside [{:#x}, {:#x}]",
                            iv.lo,
                            iv.hi
                        );
                    }
                }
                for (path, iv) in &st.lens {
                    if let Some(ArgView::Data(bytes)) = call.view_at(path) {
                        prop_assert!(
                            iv.contains(bytes.len() as u64),
                            "block {b:?}: len({path}) = {} outside [{:#x}, {:#x}]",
                            bytes.len(),
                            iv.lo,
                            iv.hi
                        );
                    }
                }
            }
        }
    }
}
