//! Snowplow — kernel fuzzing with a learned white-box test mutator.
//!
//! This is the public facade of the Snowplow reproduction (ASPLOS'25).
//! It wires the substrate crates together and exposes the end-to-end
//! pipeline the paper evaluates:
//!
//! 1. build a simulated kernel ([`Kernel`], three versions);
//! 2. collect a mutation dataset (§3.1) and train **PMM** (§3.2–3.3);
//! 3. run iso-resource fuzzing campaigns — the Syzkaller baseline vs
//!    Snowplow's PMM-guided argument localization (§5.3);
//! 4. run directed campaigns — SyzDirect vs Snowplow-D (§5.4).
//!
//! ```no_run
//! use snowplow_core::{train_pmm, Scale, Kernel, KernelVersion};
//! use snowplow_core::fuzzing::{Campaign, CampaignConfig, FuzzerKind};
//!
//! let kernel = Kernel::build(KernelVersion::V6_8);
//! let (model, report) = train_pmm(&kernel, Scale::quick());
//! println!("PMM eval: {}", report.metrics);
//! let campaign = Campaign::new(
//!     &kernel,
//!     FuzzerKind::Snowplow { model: Box::new(model) },
//!     CampaignConfig::default(),
//! );
//! let result = campaign.run();
//! println!("edges after 24 virtual hours: {}", result.final_edges);
//! ```

pub use snowplow_kernel::{
    BlockId, BugId, BugInfo, BugRegistry, CompileCache, CompileStats, CompiledKernel, Coverage,
    CrashCategory, CrashInfo, Edge, EdgeSet, Effect, ExecResult, Kernel, KernelVersion, Terminator,
    Vm,
};
pub use snowplow_mlcore::Quantize;
pub use snowplow_pmm::dataset::{Dataset, DatasetConfig, Split};
pub use snowplow_pmm::model::{Pmm, PmmConfig};
pub use snowplow_pmm::train::{EvalReport, TrainConfig, Trainer};
pub use snowplow_prog::gen as prog_gen;
pub use snowplow_prog::{enumerate_sites, Arg, ArgLoc, Call, Prog, ResSource};
pub use snowplow_syslang::{builtin, Registry, SyscallId};

/// Fuzzing-loop types (campaigns, corpus, crashes, directed mode).
pub mod fuzzing {
    pub use snowplow_fuzzer::{
        attempt_reproducer, Campaign, CampaignConfig, CampaignConfigBuilder, CampaignReport,
        CampaignState, Corpus, CorpusConfig, CorpusConfigBuilder, CorpusEntry, CorpusHandle,
        CorpusStore, CrashLog, CrashRecord, DirectedCampaign, DirectedConfig,
        DirectedConfigBuilder, DirectedOutcome, FuzzerKind, PendingPrediction, ReproOutcome,
        RunningCampaign, SchedulePolicy, SeedScheduler, StoreStats, TimelinePoint, VirtualClock,
    };
}

/// Fleet orchestration: checkpoint/resume snapshots and multi-campaign
/// scheduling over a shared inference service (DESIGN.md §11).
pub mod fleet {
    pub use snowplow_fleet::{fair_share_spread, CampaignSnapshot, FleetScheduler};
    pub use snowplow_pmm::server::{InferenceClient, InferenceService, ServiceClient};
}

/// One-stop imports for configuring the pipeline: every config type with
/// its builder, the shared execution wiring ([`ExecConfig`]), and the
/// telemetry layer (sinks, phases, snapshots).
///
/// ```no_run
/// use snowplow_core::prelude::*;
///
/// let (telemetry, sink) = Telemetry::in_memory();
/// let cfg = CampaignConfig::builder()
///     .workers(4)
///     .telemetry(telemetry)
///     .build();
/// # let _ = (cfg, sink);
/// ```
pub mod prelude {
    pub use crate::Scale;
    pub use snowplow_fuzzer::{
        CampaignConfig, CampaignConfigBuilder, CorpusConfig, CorpusConfigBuilder, CorpusHandle,
        CorpusStore, DirectedConfig, DirectedConfigBuilder, SchedulePolicy,
    };
    pub use snowplow_pmm::dataset::{DatasetConfig, DatasetConfigBuilder};
    pub use snowplow_pmm::server::ServeError;
    pub use snowplow_pmm::train::{TrainConfig, TrainConfigBuilder};
    pub use snowplow_pool::ExecConfig;
    pub use snowplow_telemetry::{
        Histogram, InMemorySink, JsonlSink, MetricsSnapshot, NullSink, Phase, PhaseSpan, Telemetry,
        TelemetrySink,
    };
}

/// Static analyses: the program linter, CFG passes, and the value-range
/// abstract interpreter with its shared cache (DESIGN.md §10).
pub mod analysis {
    pub use snowplow_analysis::{
        analyze_handler, classify, lint, statically_dead_blocks, AnalysisCache, ArgConstraint,
        CacheStats, ConstraintKind, Diagnostic, HandlerAnalysis, InfeasibleEdge, Interval,
        PrunedCfg, UnreachableProof, Verdict,
    };
}

/// Model/query types for advanced integration.
pub mod learning {
    pub use snowplow_mlcore::{
        AdamConfig, BinaryMetrics, Matrix, Params, QuantStats, Quantize, Tape,
    };
    pub use snowplow_pmm::graph::{EdgeType, NodeKind, QueryGraph};
    pub use snowplow_pmm::server::{BatchPolicy, InferenceService, InferenceStats};
    pub use snowplow_pmm::train::predict_locations;
}

/// End-to-end pipeline scale: dataset size, training budget, model size.
#[derive(Debug, Clone)]
pub struct Scale {
    /// Dataset pipeline configuration.
    pub dataset: DatasetConfig,
    /// Training configuration.
    pub train: TrainConfig,
    /// Model architecture.
    pub model: PmmConfig,
}

impl Scale {
    /// Seconds-scale budgets: enough signal to demonstrate every
    /// behaviour; used by the examples and quick tests.
    pub fn quick() -> Scale {
        Scale {
            dataset: DatasetConfig::builder()
                .base_tests(120)
                .mutations_per_base(100)
                .build(),
            train: TrainConfig::builder().epochs(6).build(),
            model: PmmConfig {
                dim: 48,
                rounds: 3,
                ..PmmConfig::default()
            },
        }
    }

    /// Minutes-scale budgets: the configuration the experiment harnesses
    /// use to regenerate the paper's tables and figures.
    pub fn paper() -> Scale {
        Scale {
            dataset: DatasetConfig::builder()
                .base_tests(500)
                .mutations_per_base(150)
                .build(),
            train: TrainConfig::builder().epochs(12).build(),
            model: PmmConfig {
                dim: 48,
                rounds: 3,
                ..PmmConfig::default()
            },
        }
    }

    /// Shards dataset collection, training-data materialization, and
    /// evaluation over `workers` threads. All outputs stay bit-identical
    /// to `workers = 1`; only wall-clock time changes.
    pub fn with_workers(mut self, workers: usize) -> Scale {
        self.dataset.exec.workers = workers;
        self.train.exec.workers = workers;
        self
    }

    /// Routes pipeline metrics (dataset harvest, training) to
    /// `telemetry`. Disabled telemetry — the default — costs nothing.
    pub fn with_telemetry(mut self, telemetry: snowplow_telemetry::Telemetry) -> Scale {
        self.dataset.exec.telemetry = telemetry.clone();
        self.train.exec.telemetry = telemetry;
        self
    }
}

/// Runs the full §3.1 + §3.3 pipeline: dataset collection, training, and
/// held-out evaluation. Returns the trained model and its Table-1-style
/// evaluation report.
///
/// If the scale's [`PmmConfig`] opts into quantized inference weights
/// ([`Quantize`]), the model is frozen *before* evaluation, so the
/// returned report measures the accuracy of the weights that will
/// actually serve.
pub fn train_pmm(kernel: &Kernel, scale: Scale) -> (Pmm, EvalReport) {
    let dataset = Dataset::generate(kernel, scale.dataset);
    let trainer = Trainer::new(kernel, scale.train);
    let mut model = Pmm::new(scale.model, kernel.registry().syscall_count());
    trainer.train(&mut model, &dataset);
    model.quantize_for_inference();
    let report = trainer.evaluate(&mut model, &dataset, Split::Evaluation);
    (model, report)
}

/// Like [`train_pmm`] but also hands back the dataset (for baselines and
/// statistics harnesses).
pub fn train_pmm_with_dataset(kernel: &Kernel, scale: Scale) -> (Pmm, EvalReport, Dataset) {
    let dataset = Dataset::generate(kernel, scale.dataset);
    let trainer = Trainer::new(kernel, scale.train);
    let mut model = Pmm::new(scale.model, kernel.registry().syscall_count());
    trainer.train(&mut model, &dataset);
    model.quantize_for_inference();
    let report = trainer.evaluate(&mut model, &dataset, Split::Evaluation);
    (model, report, dataset)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_pipeline_produces_a_useful_model() {
        let kernel = Kernel::build(KernelVersion::V6_8);
        let (mut model, report) = train_pmm(&kernel, Scale::quick());
        assert!(report.metrics.f1 > 0.15, "F1 {:.3}", report.metrics.f1);
        // The model answers arbitrary fresh queries.
        use rand::{rngs::StdRng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(77);
        let prog = snowplow_prog::gen::Generator::new(kernel.registry()).generate(&mut rng, 4);
        let mut vm = Vm::new(&kernel);
        let exec = vm.execute(&prog);
        let frontier = kernel.cfg().alternative_entries(&exec.coverage());
        let graph = snowplow_pmm::graph::QueryGraph::build(
            &kernel,
            &prog,
            &exec,
            &frontier[..frontier.len().min(4)],
        );
        assert!(!model.predict(&graph).is_empty());
    }

    /// §5.4 tolerance golden: freezing the trained localizer to f16
    /// weights must not move its held-out accuracy or its top-3 argument
    /// localizations beyond a declared epsilon.
    #[test]
    fn f16_quantized_eval_matches_f32_within_tolerance() {
        let kernel = Kernel::build(KernelVersion::V6_8);
        let (mut model, f32_report, dataset) = train_pmm_with_dataset(&kernel, Scale::quick());

        // Capture f32 top-3 localizations on held-out samples before
        // freezing (quantization rewrites the weights in place).
        let samples = dataset.split_samples(Split::Evaluation);
        let take = samples.len().min(24);
        let graphs: Vec<_> = samples[..take]
            .iter()
            .map(|s| dataset.build_example(&kernel, s).0)
            .collect();
        fn top3(m: &mut Pmm, g: &snowplow_pmm::graph::QueryGraph) -> Vec<ArgLoc> {
            let mut scored = m.predict(g);
            scored.sort_by(|a, b| b.1.total_cmp(&a.1));
            scored.into_iter().take(3).map(|(loc, _)| loc).collect()
        }
        let f32_top: Vec<_> = graphs.iter().map(|g| top3(&mut model, g)).collect();

        model.config.quantize = Quantize::F16;
        let stats = model.quantize_for_inference();
        assert_eq!(stats.scalars, model.parameter_count());
        assert!(stats.max_abs_delta > 0.0 && stats.max_abs_delta < 1e-2);

        let trainer = Trainer::new(&kernel, Scale::quick().train);
        let f16_report = trainer.evaluate(&mut model, &dataset, Split::Evaluation);
        let eps = 0.02;
        assert!(
            (f16_report.metrics.f1 - f32_report.metrics.f1).abs() <= eps,
            "f16 F1 {:.4} drifted more than {eps} from f32 F1 {:.4}",
            f16_report.metrics.f1,
            f32_report.metrics.f1,
        );

        // f16 rounding perturbs logits by ~2^-11 relative — far below
        // typical score separations, so the ranked localizations should
        // be nearly unchanged.
        let (mut agree, mut total) = (0usize, 0usize);
        for (g, expect) in graphs.iter().zip(&f32_top) {
            let got = top3(&mut model, g);
            total += expect.len();
            agree += expect.iter().filter(|l| got.contains(l)).count();
        }
        assert!(total > 0, "eval split produced no localization queries");
        assert!(
            agree * 10 >= total * 9,
            "top-3 overlap {agree}/{total} fell below 90%"
        );
    }
}
