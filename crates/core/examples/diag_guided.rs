//! Isolated A/B test of guided vs random argument localization.

use rand::prelude::*;
use snowplow_core::fuzzing::Corpus;
use snowplow_core::{train_pmm, Kernel, KernelVersion, Scale, Vm};
use snowplow_pmm::graph::QueryGraph;
use snowplow_prog::gen::Generator;
use snowplow_prog::Mutator;

fn main() {
    let kernel = Kernel::build(KernelVersion::V6_8);
    let (mut model, report) = train_pmm(&kernel, Scale::paper());
    println!("eval {}", report.metrics);
    let mut rng = StdRng::seed_from_u64(42);
    let generator = Generator::new(kernel.registry());
    let mut mutator = Mutator::new(kernel.registry());
    let mut vm = Vm::new(&kernel);
    let snap = vm.snapshot();
    let _ = Corpus::new();

    // Simulate mid-campaign state: global coverage from 3000 random execs.
    let mut global = snowplow_core::EdgeSet::new();
    let mut gblocks = snowplow_core::Coverage::new();
    let mut bases = Vec::new();
    for _ in 0..3000 {
        let p = generator.generate(&mut rng, 8);
        vm.restore(&snap);
        let e = vm.execute(&p);
        let newe = global.merge(&e.edges());
        gblocks.merge(&e.coverage());
        if newe > 0 {
            bases.push((p, e));
        }
    }
    println!("warmup: {} edges, {} bases", global.len(), bases.len());

    // A/B: for each of the last 200 bases, do 12 mutations each way.
    let mut rand_new = 0usize;
    let mut guided_new = 0usize;
    let mut rand_hits = 0usize;
    let mut guided_hits = 0usize;
    let mut loc_counts = Vec::new();
    let mut oracle_total = 0usize;
    let mut oracle_in_set = 0usize;
    let mut state_gated = 0usize;
    let mut ranks: Vec<usize> = Vec::new();
    let tail: Vec<_> = bases.iter().rev().take(200).cloned().collect();
    for (base, exec) in &tail {
        // random channel
        let mut g1 = global.clone();
        for _ in 0..12 {
            let (m, _) = mutator.mutate_arguments(&mut rng, base, None);
            vm.restore(&snap);
            let e = vm.execute(&m);
            let n = g1.merge(&e.edges());
            rand_new += n;
            if n > 0 {
                rand_hits += 1;
            }
        }
        // guided channel
        let frontier = kernel.cfg().alternative_entries(&exec.coverage());
        let mut wanted: Vec<_> = frontier
            .iter()
            .copied()
            .filter(|b| !gblocks.contains(*b))
            .collect();
        wanted.shuffle(&mut rng);
        wanted.truncate(6);
        if wanted.is_empty() {
            continue;
        }
        let graph = QueryGraph::build(&kernel, base, exec, &wanted);
        let scored = model.predict(&graph);
        let locs = model.predict_set(&graph, 0.5);
        loc_counts.push(locs.len());
        // Oracle check: does ANY single-arg mutation open a wanted target?
        // Find the gating predicate paths of the wanted blocks.
        for b in &wanted {
            for p in kernel.cfg().predecessors(*b) {
                let blk = kernel.block(*p);
                if let snowplow_kernel::Terminator::Branch { pred, taken, .. } = &blk.term {
                    if taken == b {
                        if let Some(path) = pred.arg_path() {
                            // which call is this handler's? find call idx in base with def == blk.handler
                            if let Some(ci) = base.calls.iter().position(|c| c.def == blk.handler) {
                                let loc = snowplow_prog::ArgLoc::new(ci, path.clone());
                                oracle_total += 1;
                                if locs.contains(&loc) {
                                    oracle_in_set += 1;
                                }
                                let rank = scored.iter().position(|(l, _)| *l == loc);
                                if let Some(r) = rank {
                                    ranks.push(r);
                                }
                            }
                        } else {
                            state_gated += 1;
                        }
                    }
                }
            }
        }
        let mut g2 = global.clone();
        for i in 0..12 {
            let loc = &locs[i % locs.len()];
            let (m, applied) =
                mutator.mutate_arguments(&mut rng, base, Some(std::slice::from_ref(loc)));
            if applied.is_empty() {
                continue;
            }
            vm.restore(&snap);
            let e = vm.execute(&m);
            let n = g2.merge(&e.edges());
            guided_new += n;
            if n > 0 {
                guided_hits += 1;
            }
        }
    }
    println!("random: {rand_new} new edges, {rand_hits} productive mutations");
    println!("guided: {guided_new} new edges, {guided_hits} productive mutations");
    let mean_locs: f64 = loc_counts.iter().sum::<usize>() as f64 / loc_counts.len().max(1) as f64;
    println!("mean |locs| = {mean_locs:.1}; oracle args in predicted set: {oracle_in_set}/{oracle_total} (state-gated targets: {state_gated})");
    ranks.sort();
    println!(
        "oracle rank distribution (first 20): {:?}",
        &ranks[..ranks.len().min(20)]
    );
    println!(
        "median rank: {:?} of mean {:.0} candidates",
        ranks.get(ranks.len() / 2),
        60.0
    );
}
