//! Quick end-to-end shape check: Snowplow vs Syzkaller edge coverage.
//! Run: cargo run --release -p snowplow-core --example shape_check

use std::time::Duration;

use snowplow_core::fuzzing::{Campaign, CampaignConfig, FuzzerKind};
use snowplow_core::{train_pmm, Kernel, KernelVersion, Scale};

fn main() {
    let kernel = Kernel::build(KernelVersion::V6_8);
    let t0 = std::time::Instant::now();
    let (model, report) = train_pmm(&kernel, Scale::paper());
    println!("trained PMM in {:?}; eval {}", t0.elapsed(), report.metrics);
    for seed in [1u64, 2] {
        let cfg = CampaignConfig::builder()
            .duration(Duration::from_secs(24 * 3600))
            .exec_cost(Duration::from_secs(2))
            .seed(seed)
            .build();
        let t = std::time::Instant::now();
        let base = Campaign::new(&kernel, FuzzerKind::Syzkaller, cfg.clone()).run();
        let tb = t.elapsed();
        let t = std::time::Instant::now();
        let snow = Campaign::new(
            &kernel,
            FuzzerKind::Snowplow {
                model: Box::new(model.clone()),
            },
            cfg,
        )
        .run();
        let ts = t.elapsed();
        let speedup = snow
            .time_to_edges(base.final_edges)
            .map(|t| base.timeline.last().unwrap().at.as_secs_f64() / t.as_secs_f64());
        println!(
            "seed {seed}: syzkaller {} edges ({} execs, {tb:?}) | snowplow {} edges ({} execs, {} inf, {ts:?}) | improv {:.1}% | speedup {:?}",
            base.final_edges,
            base.execs,
            snow.final_edges,
            snow.execs,
            snow.inferences,
            100.0 * (snow.final_edges as f64 / base.final_edges as f64 - 1.0),
            speedup
        );
        println!(
            "  attribution: syz {:?} | snow {:?}",
            base.attribution, snow.attribution
        );
        println!(
            "  crashes: syz {} new / {} known; snow {} new / {} known",
            base.crashes.new_count(),
            base.crashes.known_count(),
            snow.crashes.new_count(),
            snow.crashes.known_count()
        );
    }
}
