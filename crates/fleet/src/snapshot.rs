//! Versioned campaign snapshots: serialize a mid-run campaign, resume
//! it later (or elsewhere) bit-identically.
//!
//! A [`CampaignSnapshot`] captures the three things a resumed campaign
//! needs to continue exactly where the original would have gone next:
//!
//! 1. the [`CampaignConfig`] (minus the telemetry handle — sinks are a
//!    property of the resuming process, chosen at [`resume`] time);
//! 2. the [`CampaignState`] — RNG position, virtual clock, corpus with
//!    schedule weights, coverage bitsets, crash log, timeline,
//!    in-flight predictions, counters;
//! 3. the telemetry [`MetricsSnapshot`] at checkpoint time, reloaded
//!    into the resuming handle so the final metric snapshot of an
//!    interrupted run equals the uninterrupted one's byte-for-byte.
//!
//! The hot-loop caches are pure functions of the state and are *not*
//! serialized: a resume rebuilds them cold, provably without observable
//! effect (the `hot_caches` golden test in `snowplow-fuzzer` and the
//! resume goldens in this crate's tests pin that down).
//!
//! The wire format follows the repo's checkpoint conventions
//! (`SNOWPMM1` in `snowplow-mlcore`): an 8-byte magic, a `u32` version,
//! then little-endian length-prefixed fields via [`codec`](crate::codec)
//! — no serde, every read bounds-checked, floats as raw bits.
//!
//! [`resume`]: CampaignSnapshot::resume

use std::io;

use rand::rngs::StdRng;
use snowplow_fuzzer::campaign::PendingPrediction;
use snowplow_fuzzer::{
    CampaignConfig, CampaignState, Corpus, CorpusEntry, CrashLog, CrashRecord, FuzzerKind,
    RunningCampaign, TimelinePoint, VirtualClock,
};
use snowplow_kernel::{
    BlockId, BugId, Coverage, CrashCategory, CrashInfo, EdgeSet, ExecResult, Kernel,
};
use snowplow_prog::{Arg, ArgLoc, Prog, ResSource};
use snowplow_syslang::{ArgPath, PathSegment, SyscallId};
use snowplow_telemetry::{Histogram, MetricsSnapshot, Telemetry, HIST_BUCKETS};

use crate::codec::{Dec, Enc};

/// File magic: "SNOWFLT1" — Snowplow fleet snapshot, format family 1.
const MAGIC: &[u8; 8] = b"SNOWFLT1";
/// Format version; bump on any layout change. v2 added
/// `exec.compiled` to the serialized config. v3 added the shared-corpus
/// fields: per-entry `exec_time_ns` and pin flag, the handle's dedup
/// hit count, and the seed-scheduling policy tag in the config. (The
/// shared store itself is never serialized — on resume each campaign
/// re-attaches its view and the store contents are exactly the union of
/// the reattached views.)
const VERSION: u32 = 3;

/// Everything needed to resume a campaign where it left off.
#[derive(Clone)]
pub struct CampaignSnapshot {
    /// The campaign configuration (the embedded telemetry handle is not
    /// serialized; [`CampaignSnapshot::resume`] installs a fresh one).
    pub config: CampaignConfig,
    /// The deterministic loop state.
    pub state: CampaignState,
    /// Telemetry at checkpoint time.
    pub metrics: MetricsSnapshot,
}

impl CampaignSnapshot {
    /// Checkpoints a running campaign (deep copy; the campaign keeps
    /// running).
    pub fn capture(running: &RunningCampaign<'_>) -> CampaignSnapshot {
        CampaignSnapshot {
            config: running.config().clone(),
            state: running.checkpoint(),
            metrics: running.telemetry().snapshot(),
        }
    }

    /// Rebuilds a running campaign from this snapshot.
    ///
    /// `kind` supplies what the snapshot intentionally does not carry:
    /// the model (or the tagged client into a shared service) — a fleet
    /// restores many snapshots against one service. `telemetry` is the
    /// resuming process's handle; the checkpointed metrics are loaded
    /// into it first, so subsequent recording continues the original
    /// series and the final snapshot matches an uninterrupted run.
    pub fn resume<'k>(
        self,
        kernel: &'k Kernel,
        kind: FuzzerKind,
        telemetry: Telemetry,
    ) -> RunningCampaign<'k> {
        telemetry.load_snapshot(&self.metrics);
        let mut config = self.config;
        config.exec.telemetry = telemetry;
        RunningCampaign::restore(kernel, kind, config, self.state)
    }

    /// [`CampaignSnapshot::resume`] for a campaign that ingested into a
    /// shared [`CorpusStore`](snowplow_fuzzer::CorpusStore).
    ///
    /// The store is deliberately not serialized (it is shared across
    /// snapshots; its contents are exactly the union of the campaign
    /// views): the resuming process supplies it here, and the restored
    /// campaign re-attaches its view — re-populating the store's
    /// indexes, deduplicating against whatever other resumed campaigns
    /// already contributed, without advancing any hit counter.
    pub fn resume_with_store<'k>(
        self,
        kernel: &'k Kernel,
        kind: FuzzerKind,
        telemetry: Telemetry,
        store: snowplow_fuzzer::CorpusStore,
    ) -> RunningCampaign<'k> {
        telemetry.load_snapshot(&self.metrics);
        let mut config = self.config;
        config.exec.telemetry = telemetry;
        config.corpus.shared = Some(store);
        RunningCampaign::restore(kernel, kind, config, self.state)
    }

    /// Serializes the snapshot.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut e = Enc::new();
        e.bytes(MAGIC);
        e.u32(VERSION);
        enc_config(&mut e, &self.config);
        enc_state(&mut e, &self.state);
        enc_metrics(&mut e, &self.metrics);
        e.into_bytes()
    }

    /// Deserializes a snapshot produced by [`CampaignSnapshot::to_bytes`].
    pub fn from_bytes(bytes: &[u8]) -> io::Result<CampaignSnapshot> {
        let mut d = Dec::new(bytes);
        if d.byte_vec()? != MAGIC {
            return Err(Dec::error("not a fleet snapshot (bad magic)"));
        }
        let version = d.u32()?;
        if version != VERSION {
            return Err(Dec::error(&format!(
                "unsupported snapshot version {version} (supported: {VERSION})"
            )));
        }
        let config = dec_config(&mut d)?;
        let state = dec_state(&mut d)?;
        let metrics = dec_metrics(&mut d)?;
        d.finish()?;
        Ok(CampaignSnapshot {
            config,
            state,
            metrics,
        })
    }
}

// ---- Config. -----------------------------------------------------------

fn enc_config(e: &mut Enc, c: &CampaignConfig) {
    e.duration(c.duration);
    e.duration(c.exec_cost);
    e.duration(c.inference_latency);
    e.f64(c.speed_factor);
    e.usize(c.seed_corpus);
    e.f64(c.fallback_prob);
    e.usize(c.targets_per_query);
    e.f32(c.threshold);
    e.usize(c.top_k);
    e.duration(c.sample_every);
    e.u64(c.seed);
    e.usize(c.exec.workers);
    e.usize(c.max_pending_predictions);
    e.usize(c.guided_use_multiplier);
    e.bool(c.hot_caches);
    e.bool(c.distance_scheduling);
    e.bool(c.exec.compiled);
    e.u8(c.corpus.policy.to_tag());
}

fn dec_config(d: &mut Dec<'_>) -> io::Result<CampaignConfig> {
    // `CampaignConfig` is `#[non_exhaustive]`: start from the default
    // and overwrite every serialized field. A future knob the snapshot
    // predates keeps its default — the version bump discipline covers
    // knobs that change loop behavior.
    let mut c = CampaignConfig::default();
    c.duration = d.duration()?;
    c.exec_cost = d.duration()?;
    c.inference_latency = d.duration()?;
    c.speed_factor = d.f64()?;
    c.seed_corpus = d.usize()?;
    c.fallback_prob = d.f64()?;
    c.targets_per_query = d.usize()?;
    c.threshold = d.f32()?;
    c.top_k = d.usize()?;
    c.sample_every = d.duration()?;
    c.seed = d.u64()?;
    c.exec.workers = d.usize()?;
    c.max_pending_predictions = d.usize()?;
    c.guided_use_multiplier = d.usize()?;
    c.hot_caches = d.bool()?;
    c.distance_scheduling = d.bool()?;
    c.exec.compiled = d.bool()?;
    let tag = d.u8()?;
    let policy = snowplow_fuzzer::SchedulePolicy::from_tag(tag)
        .ok_or_else(|| Dec::error(&format!("invalid SchedulePolicy tag {tag}")))?;
    // The shared store is a property of the resuming process, installed
    // by `FleetCheckpoint::resume` (or the caller) after decode.
    c.corpus = snowplow_fuzzer::CorpusConfig::builder()
        .policy(policy)
        .build();
    Ok(c)
}

// ---- State. ------------------------------------------------------------

fn enc_state(e: &mut Enc, s: &CampaignState) {
    // RNG stream position (see `snowplow_pool::stream_position`): the
    // four xoshiro256++ state words, restored in O(1) without replaying
    // the stream.
    for w in s.rng.state() {
        e.u64(w);
    }
    e.duration(s.clock.now());

    e.usize(s.corpus.len());
    let pinned = s.corpus.pinned_flags();
    for (i, entry) in s.corpus.iter().enumerate() {
        enc_prog(e, &entry.prog);
        enc_words(e, entry.coverage.words());
        enc_exec(e, &entry.exec);
        e.usize(entry.new_edges);
        e.u64(entry.exec_time_ns);
        e.bool(pinned[i]);
    }
    match s.corpus.schedule_weights() {
        None => e.bool(false),
        Some(w) => {
            e.bool(true);
            enc_words(e, w);
        }
    }
    e.u64(s.corpus.dedup_hits());

    enc_words(e, s.blocks.words());
    e.usize(s.edges.rows().len());
    for row in s.edges.rows() {
        enc_words(e, row);
    }

    e.usize(s.crashes.known_signatures().len());
    for sig in s.crashes.known_signatures() {
        e.str(sig);
    }
    let records = s.crashes.records();
    e.usize(records.len());
    for r in records {
        e.str(&r.description);
        enc_category(e, r.category);
        e.bool(r.known);
        e.duration(r.first_found);
        e.usize(r.count);
        enc_prog(e, &r.witness);
        match &r.reproducer {
            None => e.bool(false),
            Some(p) => {
                e.bool(true);
                enc_prog(e, p);
            }
        }
    }
    e.usize(s.crashes.filtered);

    e.usize(s.timeline.len());
    for p in &s.timeline {
        e.duration(p.at);
        e.usize(p.edges);
        e.usize(p.blocks);
        e.usize(p.crashes);
        e.u64(p.execs);
    }

    e.usize(s.pending.len());
    for p in &s.pending {
        e.usize(p.base);
        e.duration(p.ready_at);
        enc_locs(e, &p.locs);
    }

    e.usize(s.ready.len());
    for (base, (locs, uses)) in &s.ready {
        e.usize(*base);
        enc_locs(e, locs);
        e.usize(*uses);
    }

    e.u64(s.execs);
    e.u64(s.inferences);
    e.usize(s.attribution.generation);
    e.usize(s.attribution.structural);
    e.usize(s.attribution.random_args);
    e.usize(s.attribution.guided_args);
    e.duration(s.next_sample);
    e.usize(s.sched_len);
    e.usize(s.sched_blocks_at);
}

fn dec_state(d: &mut Dec<'_>) -> io::Result<CampaignState> {
    let mut rng_state = [0u64; 4];
    for w in &mut rng_state {
        *w = d.u64()?;
    }
    let rng = StdRng::from_state(rng_state);
    let clock = VirtualClock::at(d.duration()?);

    let n_entries = d.len(8)?;
    let mut entries = Vec::with_capacity(n_entries);
    let mut pinned = Vec::with_capacity(n_entries);
    for _ in 0..n_entries {
        let prog = dec_prog(d)?;
        let coverage = Coverage::from_words(dec_words(d)?);
        let exec = dec_exec(d)?;
        let new_edges = d.usize()?;
        let exec_time_ns = d.u64()?;
        pinned.push(d.bool()?);
        entries.push(CorpusEntry {
            prog,
            coverage,
            exec,
            new_edges,
            exec_time_ns,
        });
    }
    let sched = if d.bool()? { Some(dec_words(d)?) } else { None };
    let dedup_hits = d.u64()?;
    // Restored over a private store; a shared-corpus resume re-attaches
    // the view when `RunningCampaign` is rebuilt with the store in its
    // config.
    let corpus = Corpus::restore_parts(entries, sched, pinned, dedup_hits);

    let blocks = Coverage::from_words(dec_words(d)?);
    let n_rows = d.len(8)?;
    let mut rows = Vec::with_capacity(n_rows);
    for _ in 0..n_rows {
        rows.push(dec_words(d)?);
    }
    let edges = EdgeSet::from_rows(rows);

    let n_known = d.len(8)?;
    let mut known = Vec::with_capacity(n_known);
    for _ in 0..n_known {
        known.push(d.string()?);
    }
    let mut crashes = CrashLog::new(known);
    let n_records = d.len(8)?;
    for _ in 0..n_records {
        let description = d.string()?;
        let category = dec_category(d)?;
        let known = d.bool()?;
        let first_found = d.duration()?;
        let count = d.usize()?;
        let witness = dec_prog(d)?;
        let reproducer = if d.bool()? { Some(dec_prog(d)?) } else { None };
        crashes.insert_record(CrashRecord {
            description,
            category,
            known,
            first_found,
            count,
            witness,
            reproducer,
        });
    }
    crashes.filtered = d.usize()?;

    let n_timeline = d.len(8)?;
    let mut timeline = Vec::with_capacity(n_timeline);
    for _ in 0..n_timeline {
        timeline.push(TimelinePoint {
            at: d.duration()?,
            edges: d.usize()?,
            blocks: d.usize()?,
            crashes: d.usize()?,
            execs: d.u64()?,
        });
    }

    let n_pending = d.len(8)?;
    let mut pending = std::collections::VecDeque::with_capacity(n_pending);
    for _ in 0..n_pending {
        pending.push_back(PendingPrediction {
            base: d.usize()?,
            ready_at: d.duration()?,
            locs: dec_locs(d)?,
        });
    }

    let n_ready = d.len(8)?;
    let mut ready = std::collections::BTreeMap::new();
    for _ in 0..n_ready {
        let base = d.usize()?;
        let locs = dec_locs(d)?;
        let uses = d.usize()?;
        ready.insert(base, (locs, uses));
    }

    let execs = d.u64()?;
    let inferences = d.u64()?;
    let attribution = snowplow_fuzzer::EdgeAttribution {
        generation: d.usize()?,
        structural: d.usize()?,
        random_args: d.usize()?,
        guided_args: d.usize()?,
    };
    let next_sample = d.duration()?;
    let sched_len = d.usize()?;
    let sched_blocks_at = d.usize()?;

    Ok(CampaignState {
        rng,
        clock,
        corpus,
        edges,
        blocks,
        crashes,
        timeline,
        pending,
        ready,
        execs,
        inferences,
        attribution,
        next_sample,
        sched_len,
        sched_blocks_at,
    })
}

fn enc_words(e: &mut Enc, words: &[u64]) {
    e.usize(words.len());
    for &w in words {
        e.u64(w);
    }
}

fn dec_words(d: &mut Dec<'_>) -> io::Result<Vec<u64>> {
    let n = d.len(8)?;
    let mut v = Vec::with_capacity(n);
    for _ in 0..n {
        v.push(d.u64()?);
    }
    Ok(v)
}

// ---- Programs and arguments. -------------------------------------------

fn enc_prog(e: &mut Enc, p: &Prog) {
    e.usize(p.calls.len());
    for call in &p.calls {
        e.u32(call.def.0);
        e.usize(call.args.len());
        for a in &call.args {
            enc_arg(e, a);
        }
    }
}

fn dec_prog(d: &mut Dec<'_>) -> io::Result<Prog> {
    let n_calls = d.len(4)?;
    let mut calls = Vec::with_capacity(n_calls);
    for _ in 0..n_calls {
        let def = SyscallId(d.u32()?);
        let n_args = d.len(1)?;
        let mut args = Vec::with_capacity(n_args);
        for _ in 0..n_args {
            args.push(dec_arg(d)?);
        }
        calls.push(snowplow_prog::Call { def, args });
    }
    Ok(Prog { calls })
}

fn enc_arg(e: &mut Enc, a: &Arg) {
    match a {
        Arg::Int { value } => {
            e.u8(0);
            e.u64(*value);
        }
        Arg::Ptr { addr, inner } => {
            e.u8(1);
            e.u64(*addr);
            match inner {
                None => e.bool(false),
                Some(inner) => {
                    e.bool(true);
                    enc_arg(e, inner);
                }
            }
        }
        Arg::Data { bytes } => {
            e.u8(2);
            e.bytes(bytes);
        }
        Arg::Group { inner } => {
            e.u8(3);
            e.usize(inner.len());
            for a in inner {
                enc_arg(e, a);
            }
        }
        Arg::Union { variant, inner } => {
            e.u8(4);
            e.u16(*variant);
            enc_arg(e, inner);
        }
        Arg::Res { source } => {
            e.u8(5);
            match source {
                ResSource::Ref(i) => {
                    e.u8(0);
                    e.usize(*i);
                }
                ResSource::Special(v) => {
                    e.u8(1);
                    e.u64(*v);
                }
            }
        }
    }
}

fn dec_arg(d: &mut Dec<'_>) -> io::Result<Arg> {
    Ok(match d.u8()? {
        0 => Arg::Int { value: d.u64()? },
        1 => {
            let addr = d.u64()?;
            let inner = if d.bool()? {
                Some(Box::new(dec_arg(d)?))
            } else {
                None
            };
            Arg::Ptr { addr, inner }
        }
        2 => Arg::Data {
            bytes: d.byte_vec()?,
        },
        3 => {
            let n = d.len(1)?;
            let mut inner = Vec::with_capacity(n);
            for _ in 0..n {
                inner.push(dec_arg(d)?);
            }
            Arg::Group { inner }
        }
        4 => {
            let variant = d.u16()?;
            Arg::Union {
                variant,
                inner: Box::new(dec_arg(d)?),
            }
        }
        5 => {
            let source = match d.u8()? {
                0 => ResSource::Ref(d.usize()?),
                1 => ResSource::Special(d.u64()?),
                t => return Err(Dec::error(&format!("invalid ResSource tag {t}"))),
            };
            Arg::Res { source }
        }
        t => return Err(Dec::error(&format!("invalid Arg tag {t}"))),
    })
}

fn enc_locs(e: &mut Enc, locs: &[ArgLoc]) {
    e.usize(locs.len());
    for loc in locs {
        e.usize(loc.call);
        e.usize(loc.path.segments().len());
        for seg in loc.path.segments() {
            match seg {
                PathSegment::Arg(i) => {
                    e.u8(0);
                    e.u16(*i);
                }
                PathSegment::Deref => e.u8(1),
                PathSegment::Field(i) => {
                    e.u8(2);
                    e.u16(*i);
                }
                PathSegment::Elem(i) => {
                    e.u8(3);
                    e.u16(*i);
                }
                PathSegment::Variant(i) => {
                    e.u8(4);
                    e.u16(*i);
                }
            }
        }
    }
}

fn dec_locs(d: &mut Dec<'_>) -> io::Result<Vec<ArgLoc>> {
    let n = d.len(8)?;
    let mut locs = Vec::with_capacity(n);
    for _ in 0..n {
        let call = d.usize()?;
        let n_segs = d.len(1)?;
        let mut segs = Vec::with_capacity(n_segs);
        for _ in 0..n_segs {
            segs.push(match d.u8()? {
                0 => PathSegment::Arg(d.u16()?),
                1 => PathSegment::Deref,
                2 => PathSegment::Field(d.u16()?),
                3 => PathSegment::Elem(d.u16()?),
                4 => PathSegment::Variant(d.u16()?),
                t => return Err(Dec::error(&format!("invalid PathSegment tag {t}"))),
            });
        }
        locs.push(ArgLoc::new(call, segs.into_iter().collect::<ArgPath>()));
    }
    Ok(locs)
}

// ---- Execution results and crashes. ------------------------------------

fn enc_exec(e: &mut Enc, x: &ExecResult) {
    e.usize(x.trace.len());
    for b in &x.trace {
        e.u32(b.0);
    }
    e.usize(x.call_traces.len());
    for t in &x.call_traces {
        e.usize(t.len());
        for b in t {
            e.u32(b.0);
        }
    }
    match &x.crash {
        None => e.bool(false),
        Some(c) => {
            e.bool(true);
            e.u32(c.bug.0);
            e.str(&c.description);
            enc_category(e, c.category);
            e.usize(c.call_index);
            e.u32(c.block.0);
        }
    }
    e.usize(x.completed_calls);
}

fn dec_exec(d: &mut Dec<'_>) -> io::Result<ExecResult> {
    let n_trace = d.len(4)?;
    let mut trace = Vec::with_capacity(n_trace);
    for _ in 0..n_trace {
        trace.push(BlockId(d.u32()?));
    }
    let n_ct = d.len(8)?;
    let mut call_traces = Vec::with_capacity(n_ct);
    for _ in 0..n_ct {
        let n = d.len(4)?;
        let mut t = Vec::with_capacity(n);
        for _ in 0..n {
            t.push(BlockId(d.u32()?));
        }
        call_traces.push(t);
    }
    let crash = if d.bool()? {
        Some(CrashInfo {
            bug: BugId(d.u32()?),
            description: d.string()?.into(),
            category: dec_category(d)?,
            call_index: d.usize()?,
            block: BlockId(d.u32()?),
        })
    } else {
        None
    };
    let completed_calls = d.usize()?;
    Ok(ExecResult {
        trace,
        call_traces,
        crash,
        completed_calls,
    })
}

fn enc_category(e: &mut Enc, c: CrashCategory) {
    e.u8(match c {
        CrashCategory::NullPointerDereference => 0,
        CrashCategory::PagingFault => 1,
        CrashCategory::AssertionViolation => 2,
        CrashCategory::GeneralProtectionFault => 3,
        CrashCategory::OutOfBounds => 4,
        CrashCategory::Warning => 5,
        CrashCategory::Other => 6,
        CrashCategory::InfoHang => 7,
        CrashCategory::SyzFail => 8,
    });
}

fn dec_category(d: &mut Dec<'_>) -> io::Result<CrashCategory> {
    Ok(match d.u8()? {
        0 => CrashCategory::NullPointerDereference,
        1 => CrashCategory::PagingFault,
        2 => CrashCategory::AssertionViolation,
        3 => CrashCategory::GeneralProtectionFault,
        4 => CrashCategory::OutOfBounds,
        5 => CrashCategory::Warning,
        6 => CrashCategory::Other,
        7 => CrashCategory::InfoHang,
        8 => CrashCategory::SyzFail,
        t => return Err(Dec::error(&format!("invalid CrashCategory tag {t}"))),
    })
}

// ---- Metrics. ----------------------------------------------------------

fn enc_metrics(e: &mut Enc, m: &MetricsSnapshot) {
    e.usize(m.counters.len());
    for (name, v) in &m.counters {
        e.str(name);
        e.u64(*v);
    }
    e.usize(m.gauges.len());
    for (name, v) in &m.gauges {
        e.str(name);
        e.f64(*v);
    }
    e.usize(m.hists.len());
    for (name, h) in &m.hists {
        e.str(name);
        // Sparse bucket encoding: campaign histograms concentrate in a
        // handful of the 1920 log-linear buckets, so (index, count)
        // pairs beat a dense table by ~two orders of magnitude.
        let occupied: Vec<(usize, u64)> = h
            .bucket_counts()
            .iter()
            .enumerate()
            .filter(|&(_, &c)| c > 0)
            .map(|(i, &c)| (i, c))
            .collect();
        e.usize(occupied.len());
        for (i, c) in occupied {
            e.u32(i as u32);
            e.u64(c);
        }
        let (count, sum, min, max) = h.raw_parts();
        e.u64(count);
        e.u128(sum);
        e.u64(min);
        e.u64(max);
    }
}

fn dec_metrics(d: &mut Dec<'_>) -> io::Result<MetricsSnapshot> {
    let mut m = MetricsSnapshot::default();
    let n_counters = d.len(8)?;
    for _ in 0..n_counters {
        let name = d.string()?;
        m.counters.insert(name, d.u64()?);
    }
    let n_gauges = d.len(8)?;
    for _ in 0..n_gauges {
        let name = d.string()?;
        m.gauges.insert(name, d.f64()?);
    }
    let n_hists = d.len(8)?;
    for _ in 0..n_hists {
        let name = d.string()?;
        let n_occupied = d.len(12)?;
        let mut counts = vec![0u64; HIST_BUCKETS];
        for _ in 0..n_occupied {
            let i = d.u32()? as usize;
            let c = d.u64()?;
            *counts
                .get_mut(i)
                .ok_or_else(|| Dec::error("histogram bucket index out of range"))? = c;
        }
        let count = d.u64()?;
        let sum = d.u128()?;
        let min = d.u64()?;
        let max = d.u64()?;
        let h = Histogram::from_raw_parts(counts, count, sum, min, max)
            .ok_or_else(|| Dec::error("inconsistent histogram state"))?;
        m.hists.insert(name, h);
    }
    Ok(m)
}

#[cfg(test)]
mod tests {
    use std::time::Duration;

    use snowplow_fuzzer::Campaign;
    use snowplow_kernel::KernelVersion;

    use super::*;

    fn kernel() -> &'static Kernel {
        use std::sync::OnceLock;
        static K: OnceLock<Kernel> = OnceLock::new();
        K.get_or_init(|| Kernel::build(KernelVersion::V6_8))
    }

    fn short_config(seed: u64) -> CampaignConfig {
        let mut c = CampaignConfig::default();
        c.duration = Duration::from_secs(600);
        c.seed_corpus = 10;
        c.sample_every = Duration::from_secs(60);
        c.seed = seed;
        c
    }

    #[test]
    fn snapshot_bytes_round_trip_and_reencode_identically() {
        let k = kernel();
        let (telemetry, _sink) = Telemetry::in_memory();
        let mut cfg = short_config(3);
        cfg.exec.telemetry = telemetry;
        let mut running = Campaign::new(k, FuzzerKind::Syzkaller, cfg).into_running();
        for _ in 0..200 {
            assert!(running.step());
        }
        let snap = CampaignSnapshot::capture(&running);
        let bytes = snap.to_bytes();
        let decoded = CampaignSnapshot::from_bytes(&bytes).expect("round trip");
        // Re-encoding the decoded snapshot must reproduce the original
        // bytes exactly — the codec has one canonical form.
        assert_eq!(decoded.to_bytes(), bytes);
    }

    #[test]
    fn corrupt_snapshots_are_rejected() {
        let k = kernel();
        let mut running = Campaign::new(k, FuzzerKind::Syzkaller, short_config(1)).into_running();
        for _ in 0..20 {
            running.step();
        }
        let bytes = CampaignSnapshot::capture(&running).to_bytes();
        // Bad magic.
        let mut bad = bytes.clone();
        bad[8] = b'X';
        assert!(CampaignSnapshot::from_bytes(&bad).is_err());
        // Bad version.
        let mut bad = bytes.clone();
        bad[16] = 0xFF;
        assert!(CampaignSnapshot::from_bytes(&bad).is_err());
        // Truncation at every 97th byte must error, never panic.
        for cut in (0..bytes.len()).step_by(97) {
            assert!(CampaignSnapshot::from_bytes(&bytes[..cut]).is_err());
        }
        // Trailing garbage.
        let mut bad = bytes.clone();
        bad.push(0);
        assert!(CampaignSnapshot::from_bytes(&bad).is_err());
    }
}
