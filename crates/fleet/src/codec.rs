//! The snapshot wire format's primitive layer.
//!
//! Little-endian, length-prefixed, no self-description below the file
//! header — the same conventions as the model-checkpoint format in
//! `snowplow-mlcore` (`SNOWPMM1`): the format is fully under our
//! control, every read is bounds-checked, and malformed input surfaces
//! as [`io::ErrorKind::InvalidData`] instead of a panic. Floats travel
//! as raw IEEE-754 bits so a decode→encode round trip is byte-exact
//! (including NaN payloads and signed zeros — the determinism story of
//! the whole snapshot rests on this).

use std::io;
use std::time::Duration;

/// Encoder: appends primitives to a growing byte buffer.
#[derive(Debug, Default)]
pub struct Enc {
    buf: Vec<u8>,
}

impl Enc {
    pub fn new() -> Enc {
        Enc::default()
    }

    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    pub fn bool(&mut self, v: bool) {
        self.u8(u8::from(v));
    }

    pub fn u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub fn u128(&mut self, v: u128) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub fn usize(&mut self, v: usize) {
        self.u64(v as u64);
    }

    pub fn f32(&mut self, v: f32) {
        self.u32(v.to_bits());
    }

    pub fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }

    pub fn duration(&mut self, d: Duration) {
        self.u64(d.as_secs());
        self.u32(d.subsec_nanos());
    }

    pub fn bytes(&mut self, b: &[u8]) {
        self.usize(b.len());
        self.buf.extend_from_slice(b);
    }

    pub fn str(&mut self, s: &str) {
        self.bytes(s.as_bytes());
    }
}

fn bad(what: &str) -> io::Error {
    io::Error::new(
        io::ErrorKind::InvalidData,
        format!("fleet snapshot: {what}"),
    )
}

/// Decoder: consumes the buffer front-to-back with bounds checks.
#[derive(Debug)]
pub struct Dec<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Dec<'a> {
    pub fn new(buf: &'a [u8]) -> Dec<'a> {
        Dec { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> io::Result<&'a [u8]> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.buf.len())
            .ok_or_else(|| bad("truncated input"))?;
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    pub fn u8(&mut self) -> io::Result<u8> {
        Ok(self.take(1)?[0])
    }

    pub fn bool(&mut self) -> io::Result<bool> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            b => Err(bad(&format!("invalid bool byte {b}"))),
        }
    }

    pub fn u16(&mut self) -> io::Result<u16> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }

    pub fn u32(&mut self) -> io::Result<u32> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    pub fn u64(&mut self) -> io::Result<u64> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    pub fn u128(&mut self) -> io::Result<u128> {
        Ok(u128::from_le_bytes(self.take(16)?.try_into().unwrap()))
    }

    pub fn usize(&mut self) -> io::Result<usize> {
        usize::try_from(self.u64()?).map_err(|_| bad("length exceeds usize"))
    }

    /// A length prefix for a sequence of elements each at least
    /// `min_elem_bytes` wide: rejected up front when the remaining
    /// input could not possibly hold that many elements, so corrupt
    /// lengths fail with `InvalidData` instead of an OOM allocation.
    pub fn len(&mut self, min_elem_bytes: usize) -> io::Result<usize> {
        let n = self.usize()?;
        let remaining = self.buf.len() - self.pos;
        match n.checked_mul(min_elem_bytes.max(1)) {
            Some(total) if total <= remaining => Ok(n),
            _ => Err(bad("length prefix exceeds input")),
        }
    }

    pub fn f32(&mut self) -> io::Result<f32> {
        Ok(f32::from_bits(self.u32()?))
    }

    pub fn f64(&mut self) -> io::Result<f64> {
        Ok(f64::from_bits(self.u64()?))
    }

    pub fn duration(&mut self) -> io::Result<Duration> {
        let secs = self.u64()?;
        let nanos = self.u32()?;
        if nanos >= 1_000_000_000 {
            return Err(bad("duration nanos out of range"));
        }
        Ok(Duration::new(secs, nanos))
    }

    pub fn byte_vec(&mut self) -> io::Result<Vec<u8>> {
        let n = self.len(1)?;
        Ok(self.take(n)?.to_vec())
    }

    pub fn string(&mut self) -> io::Result<String> {
        String::from_utf8(self.byte_vec()?).map_err(|_| bad("invalid utf-8 string"))
    }

    /// Fails unless every byte has been consumed — trailing garbage is
    /// a corrupt snapshot, not padding.
    pub fn finish(self) -> io::Result<()> {
        if self.pos == self.buf.len() {
            Ok(())
        } else {
            Err(bad("trailing bytes after snapshot"))
        }
    }

    pub fn error(what: &str) -> io::Error {
        bad(what)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip_byte_exactly() {
        let mut e = Enc::new();
        e.u8(7);
        e.bool(true);
        e.u16(65000);
        e.u32(123_456_789);
        e.u64(u64::MAX - 3);
        e.u128(u128::MAX / 3);
        e.f32(-0.0);
        e.f64(f64::NAN);
        e.duration(Duration::new(86_400, 999_999_999));
        e.str("fleet");
        let bytes = e.into_bytes();

        let mut d = Dec::new(&bytes);
        assert_eq!(d.u8().unwrap(), 7);
        assert!(d.bool().unwrap());
        assert_eq!(d.u16().unwrap(), 65000);
        assert_eq!(d.u32().unwrap(), 123_456_789);
        assert_eq!(d.u64().unwrap(), u64::MAX - 3);
        assert_eq!(d.u128().unwrap(), u128::MAX / 3);
        // Bit-exact float transport: -0.0 stays negative, NaN keeps
        // its payload.
        assert_eq!(d.f32().unwrap().to_bits(), (-0.0f32).to_bits());
        assert_eq!(d.f64().unwrap().to_bits(), f64::NAN.to_bits());
        assert_eq!(d.duration().unwrap(), Duration::new(86_400, 999_999_999));
        assert_eq!(d.string().unwrap(), "fleet");
        d.finish().unwrap();
    }

    #[test]
    fn malformed_input_is_invalid_data_not_a_panic() {
        // Truncation.
        let mut e = Enc::new();
        e.u64(1);
        let bytes = e.into_bytes();
        assert!(Dec::new(&bytes[..4]).u64().is_err());
        // Oversized length prefix.
        let mut e = Enc::new();
        e.usize(usize::MAX);
        let bytes = e.into_bytes();
        assert!(Dec::new(&bytes).byte_vec().is_err());
        // Trailing garbage.
        let mut e = Enc::new();
        e.u8(1);
        e.u8(2);
        let bytes = e.into_bytes();
        let mut d = Dec::new(&bytes);
        d.u8().unwrap();
        assert!(d.finish().is_err());
        // Bad bool.
        assert!(Dec::new(&[9]).bool().is_err());
    }
}
