//! Fleet orchestration: run many campaigns at once, checkpoint and
//! resume them bit-identically, and share one inference service fairly.
//!
//! Real Snowplow deployments fuzz many kernel configurations in
//! parallel against a single GPU serving tier. This crate reproduces
//! that shape on the simulated stack:
//!
//! * [`CampaignSnapshot`] — a versioned, serializable checkpoint of a
//!   mid-run campaign (config + deterministic loop state + telemetry).
//!   `capture → to_bytes → from_bytes → resume` yields a campaign whose
//!   final report and metrics are byte-identical to never having been
//!   interrupted;
//! * [`FleetScheduler`] — cooperative round-robin multiplexing of N
//!   campaigns over one shared [`InferenceService`], with per-campaign
//!   query tagging, kill/resume/rebalance mid-run, and `fleet.*`
//!   aggregate telemetry.
//!
//! [`InferenceService`]: snowplow_pmm::server::InferenceService

pub mod codec;
pub mod scheduler;
pub mod snapshot;

pub use scheduler::{fair_share_spread, FleetScheduler};
pub use snapshot::CampaignSnapshot;
