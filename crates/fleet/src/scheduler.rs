//! Multi-campaign orchestration over a shared inference tier.
//!
//! A [`FleetScheduler`] multiplexes N independent campaigns — each with
//! its own seed, config, telemetry, and virtual clock — over one
//! [`InferenceService`]. Campaigns that use the shared tier submit
//! tagged queries ([`ServiceClient`] with the campaign id as the tag),
//! so the service's [`served_by_tag`](InferenceService::served_by_tag)
//! ledger attributes every prediction and the fair-queue admission in
//! `snowplow-pmm` rotates lanes round-robin: no campaign can starve the
//! others however bursty its query stream.
//!
//! Scheduling is cooperative and deterministic: [`run_round`] grants
//! each active campaign a quantum of *virtual* time, in slot order, and
//! a campaign's result is a pure function of its own (kernel, config,
//! seed) — identical whether it runs alone, in a fleet, or across a
//! [`kill`](FleetScheduler::kill)/[`resume`](FleetScheduler::resume_shared)
//! cycle (the resume goldens pin this).
//!
//! [`run_round`]: FleetScheduler::run_round

use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::Duration;

use snowplow_fuzzer::{
    Campaign, CampaignConfig, CampaignReport, CorpusStore, FuzzerKind, RunningCampaign,
};
use snowplow_kernel::Kernel;
use snowplow_pmm::model::Pmm;
use snowplow_pmm::server::{InferenceService, ServiceClient};
use snowplow_telemetry::{MetricsSnapshot, Telemetry};

use crate::snapshot::CampaignSnapshot;

/// One campaign's seat in the fleet.
struct Slot<'k> {
    id: u32,
    /// A clone of the handle installed in the campaign's config; kept
    /// here so metrics remain reachable after the campaign finishes.
    telemetry: Telemetry,
    running: Option<RunningCampaign<'k>>,
    report: Option<CampaignReport>,
}

/// Cooperative round-robin scheduler for a fleet of campaigns sharing
/// one inference service.
pub struct FleetScheduler<'k> {
    kernel: &'k Kernel,
    service: Arc<InferenceService>,
    slots: Vec<Slot<'k>>,
    next_id: u32,
    /// Fleet-wide corpus store, when campaigns pool their corpora.
    /// Installed into every subsequently spawned campaign's config and
    /// into every resume, and reported in [`aggregate`]
    /// (`corpus.store_*` gauges).
    ///
    /// [`aggregate`]: FleetScheduler::aggregate
    shared_corpus: Option<CorpusStore>,
}

impl<'k> FleetScheduler<'k> {
    /// Creates an empty fleet around a shared inference service.
    pub fn new(kernel: &'k Kernel, service: Arc<InferenceService>) -> FleetScheduler<'k> {
        FleetScheduler {
            kernel,
            service,
            slots: Vec::new(),
            next_id: 1,
            shared_corpus: None,
        }
    }

    /// Pools the corpora of every campaign spawned or resumed after
    /// this call into `store` (cross-campaign dedup; see
    /// `snowplow-corpus`). Each campaign still selects only from its
    /// own view, so reports stay a pure function of (kernel, config,
    /// seed).
    pub fn set_shared_corpus(&mut self, store: CorpusStore) {
        self.shared_corpus = Some(store);
    }

    /// The fleet-wide corpus store, if one was installed.
    pub fn shared_corpus(&self) -> Option<&CorpusStore> {
        self.shared_corpus.as_ref()
    }

    /// The shared inference service.
    pub fn service(&self) -> &Arc<InferenceService> {
        &self.service
    }

    fn add_slot(
        &mut self,
        config: CampaignConfig,
        make_kind: impl FnOnce(u32) -> FuzzerKind,
    ) -> u32 {
        let id = self.next_id;
        self.next_id += 1;
        let (telemetry, _sink) = Telemetry::in_memory();
        let mut config = config;
        config.exec.telemetry = telemetry.clone();
        if let Some(store) = &self.shared_corpus {
            config.corpus.shared = Some(store.clone());
        }
        let running = Campaign::new(self.kernel, make_kind(id), config).into_running();
        self.slots.push(Slot {
            id,
            telemetry,
            running: Some(running),
            report: None,
        });
        id
    }

    /// Spawns a Syzkaller-baseline campaign (no inference). Returns its
    /// campaign id.
    pub fn spawn_baseline(&mut self, config: CampaignConfig) -> u32 {
        self.add_slot(config, |_| FuzzerKind::Syzkaller)
    }

    /// Spawns a Snowplow campaign with a private model copy.
    pub fn spawn_snowplow(&mut self, config: CampaignConfig, model: Box<Pmm>) -> u32 {
        self.add_slot(config, |_| FuzzerKind::Snowplow { model })
    }

    /// Spawns a Snowplow campaign whose inference goes through the
    /// shared service, tagged with the new campaign id.
    pub fn spawn_shared(&mut self, config: CampaignConfig) -> u32 {
        let service = Arc::clone(&self.service);
        self.add_slot(config, move |id| FuzzerKind::SnowplowShared {
            client: Box::new(ServiceClient::new(service, id)),
        })
    }

    fn add_resumed(
        &mut self,
        snap: CampaignSnapshot,
        make_kind: impl FnOnce(u32) -> FuzzerKind,
    ) -> u32 {
        let id = self.next_id;
        self.next_id += 1;
        let (telemetry, _sink) = Telemetry::in_memory();
        let running = match &self.shared_corpus {
            Some(store) => {
                snap.resume_with_store(self.kernel, make_kind(id), telemetry.clone(), store.clone())
            }
            None => snap.resume(self.kernel, make_kind(id), telemetry.clone()),
        };
        self.slots.push(Slot {
            id,
            telemetry,
            running: Some(running),
            report: None,
        });
        id
    }

    /// Resumes a checkpointed baseline campaign in a fresh slot.
    pub fn resume_baseline(&mut self, snap: CampaignSnapshot) -> u32 {
        self.add_resumed(snap, |_| FuzzerKind::Syzkaller)
    }

    /// Resumes a checkpointed campaign against the shared service under
    /// its new slot's tag.
    pub fn resume_shared(&mut self, snap: CampaignSnapshot) -> u32 {
        let service = Arc::clone(&self.service);
        self.add_resumed(snap, move |id| FuzzerKind::SnowplowShared {
            client: Box::new(ServiceClient::new(service, id)),
        })
    }

    fn slot(&self, id: u32) -> Option<&Slot<'k>> {
        self.slots.iter().find(|s| s.id == id)
    }

    fn slot_mut(&mut self, id: u32) -> Option<&mut Slot<'k>> {
        self.slots.iter_mut().find(|s| s.id == id)
    }

    /// Checkpoints a running campaign without stopping it.
    pub fn checkpoint(&self, id: u32) -> Option<CampaignSnapshot> {
        self.slot(id)?
            .running
            .as_ref()
            .map(CampaignSnapshot::capture)
    }

    /// Checkpoints a running campaign and removes it from the fleet.
    /// Resume later with [`resume_shared`](Self::resume_shared) or
    /// [`resume_baseline`](Self::resume_baseline).
    pub fn kill(&mut self, id: u32) -> Option<CampaignSnapshot> {
        let slot = self.slot_mut(id)?;
        let snap = slot.running.as_ref().map(CampaignSnapshot::capture)?;
        let pos = self.slots.iter().position(|s| s.id == id).unwrap();
        self.slots.remove(pos);
        Some(snap)
    }

    /// Reorders admission so the campaign furthest behind in virtual
    /// time steps first next round (stable: ties keep spawn order).
    pub fn rebalance(&mut self) {
        self.slots
            .sort_by_key(|s| (s.running.as_ref().map(|r| r.now()), s.id));
    }

    /// Grants each active campaign one quantum of virtual time, in slot
    /// order. Campaigns that reach their deadline are finished into
    /// their report. Returns the number of campaigns still active.
    pub fn run_round(&mut self, quantum: Duration) -> usize {
        let mut active = 0;
        for slot in &mut self.slots {
            let Some(rc) = slot.running.as_mut() else {
                continue;
            };
            let target = rc.now() + quantum;
            while rc.now() < target && rc.step() {}
            if rc.is_done() {
                let rc = slot.running.take().unwrap();
                slot.report = Some(rc.finish());
            } else {
                active += 1;
            }
        }
        active
    }

    /// Runs rounds until every campaign has finished.
    pub fn run_to_completion(&mut self, quantum: Duration) {
        while self.run_round(quantum) > 0 {}
    }

    /// The finished report for a campaign, if it has completed.
    pub fn report(&self, id: u32) -> Option<&CampaignReport> {
        self.slot(id)?.report.as_ref()
    }

    /// Ids of all campaigns currently in the fleet, in admission order.
    pub fn campaign_ids(&self) -> Vec<u32> {
        self.slots.iter().map(|s| s.id).collect()
    }

    /// Fleet-wide metrics: each campaign's snapshot merged under a
    /// `fleet.c<id>.` prefix, plus:
    ///
    /// * `fleet.campaigns` — campaigns in the fleet;
    /// * `fleet.fair_share_spread` — min/mean of per-tag served query
    ///   counts on the shared service (1.0 = perfectly fair, 0.0 = some
    ///   campaign fully starved; only present once queries were served).
    pub fn aggregate(&self) -> MetricsSnapshot {
        let mut agg = MetricsSnapshot::default();
        for slot in &self.slots {
            let prefix = format!("fleet.c{}.", slot.id);
            agg.merge_prefixed(&prefix, &slot.telemetry.snapshot());
        }
        agg.gauges
            .insert("fleet.campaigns".to_string(), self.slots.len() as f64);
        if let Some(spread) = fair_share_spread(&self.service.served_by_tag()) {
            agg.gauges
                .insert("fleet.fair_share_spread".to_string(), spread);
        }
        // Store-level corpus gauges live here, not in per-campaign
        // telemetry: they depend on fleet interleaving (which campaign
        // ingested a shared discovery first), while campaign snapshots
        // must stay pure functions of (kernel, config, seed).
        if let Some(store) = &self.shared_corpus {
            let s = store.stats();
            agg.gauges
                .insert("corpus.store_entries".to_string(), s.entries as f64);
            agg.gauges
                .insert("corpus.indexed_edges".to_string(), s.indexed_edges as f64);
            agg.gauges
                .insert("corpus.index_bytes".to_string(), s.index_bytes as f64);
            agg.gauges
                .insert("corpus.store_dedup_hits".to_string(), s.dedup_hits as f64);
            agg.gauges
                .insert("corpus.pinned".to_string(), s.pinned as f64);
        }
        agg
    }
}

/// min/mean of the per-tag served counts; `None` when nothing was
/// served yet.
pub fn fair_share_spread(served: &BTreeMap<u32, u64>) -> Option<f64> {
    if served.is_empty() {
        return None;
    }
    let total: u64 = served.values().sum();
    if total == 0 {
        return None;
    }
    let mean = total as f64 / served.len() as f64;
    let min = *served.values().min().unwrap() as f64;
    Some(min / mean)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fair_share_spread_math() {
        assert_eq!(fair_share_spread(&BTreeMap::new()), None);
        let even: BTreeMap<u32, u64> = [(1, 10), (2, 10)].into_iter().collect();
        assert_eq!(fair_share_spread(&even), Some(1.0));
        let starved: BTreeMap<u32, u64> = [(1, 0), (2, 20)].into_iter().collect();
        assert_eq!(fair_share_spread(&starved), Some(0.0));
        let skew: BTreeMap<u32, u64> = [(1, 5), (2, 15)].into_iter().collect();
        assert_eq!(fair_share_spread(&skew), Some(0.5));
    }
}
