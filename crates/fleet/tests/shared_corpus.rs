//! Fleet goldens for the shared corpus store.
//!
//! Contract: pooling campaign corpora into one [`CorpusStore`] is
//! unobservable in every campaign's *report* — each handle selects only
//! from its own view, so fingerprints match the private-store runs —
//! while the store dedups identical discoveries across campaigns
//! (`corpus.dedup_hits` / `corpus.store_dedup_hits` prove it), and a
//! kill/checkpoint/resume cycle of a shared-store campaign is
//! bit-identical down to the rendered telemetry.

use std::sync::{Arc, OnceLock};
use std::time::Duration;

use snowplow_fleet::{CampaignSnapshot, FleetScheduler};
use snowplow_fuzzer::{Campaign, CampaignConfig, CorpusStore, FuzzerKind};
use snowplow_kernel::{Kernel, KernelVersion};
use snowplow_pmm::model::{Pmm, PmmConfig};
use snowplow_pmm::server::InferenceService;
use snowplow_telemetry::Telemetry;

fn kernel() -> &'static Kernel {
    static K: OnceLock<Kernel> = OnceLock::new();
    K.get_or_init(|| Kernel::build(KernelVersion::V6_8))
}

fn service() -> Arc<InferenceService> {
    let model = Pmm::new(
        PmmConfig {
            dim: 16,
            rounds: 1,
            ..Default::default()
        },
        kernel().registry().syscall_count(),
    );
    Arc::new(InferenceService::start(&model, 2))
}

fn fleet_config(seed: u64) -> CampaignConfig {
    CampaignConfig::builder()
        .duration(Duration::from_secs(4 * 3600))
        .exec_cost(Duration::from_secs(60))
        .sample_every(Duration::from_secs(3600))
        .seed_corpus(10)
        .seed(seed)
        .telemetry(Telemetry::disabled()) // replaced by the scheduler
        .build()
}

/// The per-campaign metric lines of an aggregate render, with the
/// `fleet.c<id>.` prefix stripped so campaigns can be compared across
/// fleets that assigned them different ids.
fn campaign_lines(render: &str, id: u32) -> Vec<String> {
    let tag = format!("fleet.c{id}.");
    render
        .lines()
        .filter(|l| l.contains(&tag))
        .map(|l| l.replace(&tag, ""))
        .collect()
}

/// Seeds [1, 1, 2, 2]: each seed's second campaign re-discovers exactly
/// what the first one already ingested, so every one of its admissions
/// is a store-level dedup hit.
#[test]
fn four_campaign_shared_store_dedups_across_campaigns() {
    let mut fleet = FleetScheduler::new(kernel(), service());
    let store = CorpusStore::new();
    fleet.set_shared_corpus(store.clone());

    let ids: Vec<u32> = [1u64, 1, 2, 2]
        .into_iter()
        .map(|seed| fleet.spawn_baseline(fleet_config(seed)))
        .collect();
    fleet.run_to_completion(Duration::from_secs(600));

    // Sharing the store never changes what a campaign reports: the
    // solo private-store run of each seed lands on the same
    // fingerprint.
    for (seed, id) in [1u64, 1, 2, 2].into_iter().zip(&ids) {
        let solo = Campaign::new(kernel(), FuzzerKind::Syzkaller, fleet_config(seed))
            .run()
            .fingerprint();
        assert_eq!(
            fleet.report(*id).expect("campaign finished").fingerprint(),
            solo,
            "campaign {id} (seed {seed}) diverged from its private-store run"
        );
    }

    let agg = fleet.aggregate();
    let hits = agg.gauges["corpus.store_dedup_hits"];
    assert!(hits > 0.0, "identical campaigns produced no dedup hits");
    // Every admission either inserted a store entry or hit an existing
    // one, so the views sum to insertions + hits.
    let view_total: f64 = ids
        .iter()
        .map(|id| agg.gauges[&format!("fleet.c{id}.corpus.entries")])
        .sum();
    assert_eq!(view_total, agg.gauges["corpus.store_entries"] + hits);
    // Each seed's second campaign admitted nothing the first had not
    // already inserted.
    for id in [ids[1], ids[3]] {
        assert_eq!(
            agg.gauges[&format!("fleet.c{id}.corpus.dedup_hits")],
            agg.gauges[&format!("fleet.c{id}.corpus.entries")],
            "trailing campaign {id} should dedup every admission"
        );
    }
    assert_eq!(store.stats().entries, store.len());
}

/// Kill the trailing seed-1 campaign mid-run, round-trip its snapshot
/// through bytes, and resume it into the same shared store: reports and
/// rendered telemetry match the uninterrupted fleet byte-for-byte.
#[test]
fn shared_store_kill_resume_is_bit_identical() {
    let seeds = [1u64, 1, 2, 2];
    let run_reference = || {
        let mut fleet = FleetScheduler::new(kernel(), service());
        fleet.set_shared_corpus(CorpusStore::new());
        let ids: Vec<u32> = seeds
            .into_iter()
            .map(|seed| fleet.spawn_baseline(fleet_config(seed)))
            .collect();
        fleet.run_to_completion(Duration::from_secs(600));
        let agg = fleet.aggregate().render();
        (
            ids.iter()
                .map(|id| fleet.report(*id).unwrap().fingerprint())
                .collect::<Vec<_>>(),
            ids.iter()
                .map(|id| campaign_lines(&agg, *id))
                .collect::<Vec<_>>(),
        )
    };
    let (golden_prints, golden_lines) = run_reference();

    let mut fleet = FleetScheduler::new(kernel(), service());
    fleet.set_shared_corpus(CorpusStore::new());
    let ids: Vec<u32> = seeds
        .into_iter()
        .map(|seed| fleet.spawn_baseline(fleet_config(seed)))
        .collect();

    // Kill the second seed-1 campaign mid-flight. Its insertions all
    // dedup against the leading seed-1 campaign, so removing it for a
    // round cannot reorder who first-inserted any store entry.
    let victim = ids[1];
    fleet.run_round(Duration::from_secs(3600));
    let snap = fleet.kill(victim).expect("victim was running");
    fleet.run_round(Duration::from_secs(3600));

    let bytes = snap.to_bytes();
    let snap = CampaignSnapshot::from_bytes(&bytes).expect("snapshot decodes");
    let revived = fleet.resume_baseline(snap);
    fleet.run_to_completion(Duration::from_secs(600));

    let final_ids = [ids[0], revived, ids[2], ids[3]];
    let agg = fleet.aggregate().render();
    for (i, id) in final_ids.into_iter().enumerate() {
        assert_eq!(
            fleet.report(id).expect("campaign finished").fingerprint(),
            golden_prints[i],
            "campaign {i} report drifted across kill/resume"
        );
        assert_eq!(
            campaign_lines(&agg, id),
            golden_lines[i],
            "campaign {i} telemetry drifted across kill/resume"
        );
    }
    assert!(
        fleet.shared_corpus().unwrap().dedup_hits() > 0,
        "resumed fleet lost its dedup hits"
    );
}
