//! The fleet goldens.
//!
//! The contract under test: interrupting a campaign — checkpoint to
//! bytes, drop everything, decode, resume in a fresh process state —
//! is *unobservable*. The final report fingerprint and the rendered
//! telemetry snapshot are byte-identical to the uninterrupted run, at
//! any worker count, for both the baseline and the shared-inference
//! fuzzer, and no matter how often the campaign is interrupted.
//!
//! Plus the fleet-level properties: four campaigns multiplexed over one
//! inference service all finish, each shows up in the aggregate
//! `fleet.c<id>.*` metrics, and none is starved below 20% of the fair
//! inference share.

use std::sync::{Arc, OnceLock};
use std::time::Duration;

use proptest::prelude::*;
use snowplow_fleet::{fair_share_spread, CampaignSnapshot, FleetScheduler};
use snowplow_fuzzer::{Campaign, CampaignConfig, FuzzerKind, RunningCampaign};
use snowplow_kernel::{Kernel, KernelVersion};
use snowplow_pmm::model::{Pmm, PmmConfig};
use snowplow_pmm::server::{InferenceService, ServiceClient};
use snowplow_telemetry::Telemetry;

fn kernel() -> &'static Kernel {
    static K: OnceLock<Kernel> = OnceLock::new();
    K.get_or_init(|| Kernel::build(KernelVersion::V6_8))
}

fn model() -> Pmm {
    Pmm::new(
        PmmConfig {
            dim: 16,
            rounds: 1,
            ..Default::default()
        },
        kernel().registry().syscall_count(),
    )
}

/// A "24-hour" campaign at one execution per virtual minute.
fn day_config(seed: u64, workers: usize, telemetry: Telemetry) -> CampaignConfig {
    CampaignConfig::builder()
        .duration(Duration::from_secs(24 * 3600))
        .exec_cost(Duration::from_secs(60))
        .sample_every(Duration::from_secs(2 * 3600))
        .seed_corpus(20)
        .seed(seed)
        .workers(workers)
        .telemetry(telemetry)
        .build()
}

/// Runs `running` to completion and returns (report fingerprint,
/// rendered final metrics).
fn drain(running: RunningCampaign<'_>, telemetry: &Telemetry) -> (String, String) {
    let report = running.run_to_end();
    (report.fingerprint(), telemetry.snapshot().render())
}

/// The uninterrupted reference run.
fn uninterrupted(kind: FuzzerKind, seed: u64, workers: usize) -> (String, String) {
    let (telemetry, _sink) = Telemetry::in_memory();
    let cfg = day_config(seed, workers, telemetry.clone());
    let running = Campaign::new(kernel(), kind, cfg).into_running();
    drain(running, &telemetry)
}

/// The same campaign, but killed at virtual `interrupt_at`, serialized,
/// deserialized, and resumed with a fresh telemetry handle.
fn interrupted(
    kind_a: FuzzerKind,
    kind_b: FuzzerKind,
    seed: u64,
    workers: usize,
    interrupt_at: Duration,
) -> (String, String) {
    let (telemetry, _sink) = Telemetry::in_memory();
    let cfg = day_config(seed, workers, telemetry.clone());
    let mut running = Campaign::new(kernel(), kind_a, cfg).into_running();
    while running.now() < interrupt_at && running.step() {}
    let bytes = CampaignSnapshot::capture(&running).to_bytes();
    drop(running);
    drop(telemetry);

    let snap = CampaignSnapshot::from_bytes(&bytes).expect("snapshot decodes");
    let (telemetry, _sink) = Telemetry::in_memory();
    let resumed = snap.resume(kernel(), kind_b, telemetry.clone());
    drain(resumed, &telemetry)
}

#[test]
fn baseline_resume_is_bit_identical_at_every_worker_count() {
    let half_day = Duration::from_secs(12 * 3600);
    for workers in [1usize, 2, 8] {
        let golden = uninterrupted(FuzzerKind::Syzkaller, 7, workers);
        let resumed = interrupted(
            FuzzerKind::Syzkaller,
            FuzzerKind::Syzkaller,
            7,
            workers,
            half_day,
        );
        assert_eq!(
            golden.0, resumed.0,
            "report drifted after resume at workers={workers}"
        );
        assert_eq!(
            golden.1, resumed.1,
            "telemetry drifted after resume at workers={workers}"
        );
    }
}

#[test]
fn shared_inference_resume_is_bit_identical() {
    let service = Arc::new(InferenceService::start(&model(), 2));
    let shared = |tag: u32| FuzzerKind::SnowplowShared {
        client: Box::new(ServiceClient::new(Arc::clone(&service), tag)),
    };
    let golden = uninterrupted(shared(1), 11, 2);
    // The resumed campaign reconnects under a *different* tag — the tag
    // routes fairness accounting, not results.
    let resumed = interrupted(shared(2), shared(3), 11, 2, Duration::from_secs(12 * 3600));
    assert_eq!(golden.0, resumed.0, "report drifted after shared resume");
    assert_eq!(golden.1, resumed.1, "telemetry drifted after shared resume");
}

#[test]
fn owned_and_shared_inference_agree() {
    // The shared service serves the same deterministic model, so a
    // campaign gets identical predictions through either path.
    let owned = uninterrupted(
        FuzzerKind::Snowplow {
            model: Box::new(model()),
        },
        11,
        2,
    );
    let service = Arc::new(InferenceService::start(&model(), 2));
    let shared = uninterrupted(
        FuzzerKind::SnowplowShared {
            client: Box::new(ServiceClient::new(service, 1)),
        },
        11,
        2,
    );
    assert_eq!(
        owned.0, shared.0,
        "owned vs shared inference reports differ"
    );
}

#[test]
fn checkpoint_at_every_interval_is_unobservable() {
    // Round-trip the campaign through bytes every k steps, for several
    // k, and require the result to match the never-interrupted run.
    let short = |telemetry: Telemetry| {
        CampaignConfig::builder()
            .duration(Duration::from_secs(600))
            .seed_corpus(5)
            .sample_every(Duration::from_secs(60))
            .seed(3)
            .telemetry(telemetry)
            .build()
    };
    let (telemetry, _sink) = Telemetry::in_memory();
    let golden = drain(
        Campaign::new(kernel(), FuzzerKind::Syzkaller, short(telemetry.clone())).into_running(),
        &telemetry,
    );

    for k in [1usize, 7, 25] {
        let (mut telemetry, _sink) = Telemetry::in_memory();
        let mut running =
            Campaign::new(kernel(), FuzzerKind::Syzkaller, short(telemetry.clone())).into_running();
        loop {
            let mut stepped = true;
            for _ in 0..k {
                if !running.step() {
                    stepped = false;
                    break;
                }
            }
            let bytes = CampaignSnapshot::capture(&running).to_bytes();
            drop(running);
            let snap = CampaignSnapshot::from_bytes(&bytes).expect("snapshot decodes");
            let (t, _sink2) = Telemetry::in_memory();
            running = snap.resume(kernel(), FuzzerKind::Syzkaller, t.clone());
            telemetry = t;
            if !stepped {
                break;
            }
        }
        let result = drain(running, &telemetry);
        assert_eq!(
            golden.0, result.0,
            "report drifted at checkpoint interval {k}"
        );
        assert_eq!(
            golden.1, result.1,
            "telemetry drifted at checkpoint interval {k}"
        );
    }
}

#[test]
fn four_campaign_fleet_shares_inference_fairly() {
    let service = Arc::new(InferenceService::start(&model(), 2));
    let mut fleet = FleetScheduler::new(kernel(), Arc::clone(&service));
    let mut ids = Vec::new();
    for seed in 1u64..=4 {
        let cfg = CampaignConfig::builder()
            .duration(Duration::from_secs(4 * 3600))
            .exec_cost(Duration::from_secs(60))
            .sample_every(Duration::from_secs(3600))
            .seed_corpus(10)
            .seed(seed)
            .telemetry(Telemetry::disabled()) // replaced by the scheduler
            .build();
        ids.push(fleet.spawn_shared(cfg));
    }
    fleet.run_to_completion(Duration::from_secs(600));

    for id in &ids {
        let report = fleet.report(*id).expect("campaign finished");
        assert!(report.execs > 0);
    }

    let agg = fleet.aggregate();
    assert_eq!(agg.gauges.get("fleet.campaigns"), Some(&4.0));
    for id in &ids {
        let key = format!("fleet.c{id}.execs");
        assert!(
            agg.counters.get(&key).copied().unwrap_or(0) > 0,
            "missing per-campaign counter {key}"
        );
    }

    let served = service.served_by_tag();
    assert_eq!(served.len(), 4, "every campaign reached the service");
    let mean = served.values().sum::<u64>() as f64 / served.len() as f64;
    for (tag, count) in &served {
        assert!(
            *count as f64 >= 0.2 * mean,
            "campaign {tag} starved: served {count} of mean {mean:.1}"
        );
    }
    let spread = fair_share_spread(&served).expect("queries were served");
    assert!(spread >= 0.2, "fair-share spread {spread:.3} below 0.2");
    assert_eq!(agg.gauges.get("fleet.fair_share_spread"), Some(&spread));
}

#[test]
fn kill_resume_rebalance_mid_run_preserves_results() {
    let service = Arc::new(InferenceService::start(&model(), 2));

    // Solo reference: campaign seed 21 through the shared service,
    // never interrupted.
    let golden = {
        let (telemetry, _sink) = Telemetry::in_memory();
        let cfg = CampaignConfig::builder()
            .duration(Duration::from_secs(4 * 3600))
            .exec_cost(Duration::from_secs(60))
            .sample_every(Duration::from_secs(3600))
            .seed_corpus(10)
            .seed(21)
            .telemetry(telemetry.clone())
            .build();
        let running = Campaign::new(
            kernel(),
            FuzzerKind::SnowplowShared {
                client: Box::new(ServiceClient::new(Arc::clone(&service), 99)),
            },
            cfg,
        )
        .into_running();
        running.run_to_end().fingerprint()
    };

    let mut fleet = FleetScheduler::new(kernel(), Arc::clone(&service));
    let cfg = |seed: u64| {
        CampaignConfig::builder()
            .duration(Duration::from_secs(4 * 3600))
            .exec_cost(Duration::from_secs(60))
            .sample_every(Duration::from_secs(3600))
            .seed_corpus(10)
            .seed(seed)
            .telemetry(Telemetry::disabled())
            .build()
    };
    let victim = fleet.spawn_shared(cfg(21));
    let other = fleet.spawn_shared(cfg(22));

    // Let both run a while, then kill the victim mid-flight.
    fleet.run_round(Duration::from_secs(3600));
    let snap = fleet.kill(victim).expect("victim was running");
    assert!(fleet.checkpoint(victim).is_none(), "victim left the fleet");

    // The survivor keeps running; the victim's snapshot survives a trip
    // through bytes and rejoins later under a new id.
    fleet.run_round(Duration::from_secs(3600));
    let bytes = snap.to_bytes();
    let snap = CampaignSnapshot::from_bytes(&bytes).expect("snapshot decodes");
    let revived = fleet.resume_shared(snap);
    assert_ne!(revived, victim, "resume allocates a fresh campaign id");

    // Rebalance: the revived campaign is furthest behind, so it must be
    // admitted first next round.
    fleet.rebalance();
    assert_eq!(fleet.campaign_ids()[0], revived);

    fleet.run_to_completion(Duration::from_secs(600));
    assert_eq!(
        fleet
            .report(revived)
            .expect("revived finished")
            .fingerprint(),
        golden,
        "kill/resume changed the campaign outcome"
    );
    assert!(fleet.report(other).is_some(), "survivor finished too");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Any prefix of any seeded campaign encodes to bytes that decode
    /// back to the same canonical encoding, and the resumed run always
    /// lands on the uninterrupted result.
    #[test]
    fn prop_snapshot_round_trips_and_resumes(seed in 0u64..1000, steps in 0usize..120) {
        let mk = |telemetry: Telemetry| {
            CampaignConfig::builder()
                .duration(Duration::from_secs(300))
                .seed_corpus(5)
                .sample_every(Duration::from_secs(60))
                .seed(seed)
                .telemetry(telemetry)
                .build()
        };
        let (telemetry, _sink) = Telemetry::in_memory();
        let golden = drain(
            Campaign::new(kernel(), FuzzerKind::Syzkaller, mk(telemetry.clone())).into_running(),
            &telemetry,
        );

        let (telemetry, _sink) = Telemetry::in_memory();
        let mut running =
            Campaign::new(kernel(), FuzzerKind::Syzkaller, mk(telemetry.clone())).into_running();
        for _ in 0..steps {
            if !running.step() {
                break;
            }
        }
        let bytes = CampaignSnapshot::capture(&running).to_bytes();
        let decoded = CampaignSnapshot::from_bytes(&bytes).expect("snapshot decodes");
        prop_assert_eq!(decoded.to_bytes(), bytes);

        let (telemetry, _sink) = Telemetry::in_memory();
        let resumed = decoded.resume(kernel(), FuzzerKind::Syzkaller, telemetry.clone());
        let result = drain(resumed, &telemetry);
        prop_assert_eq!(&golden.0, &result.0);
        prop_assert_eq!(&golden.1, &result.1);
    }
}
