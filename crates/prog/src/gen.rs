//! Random program generation.
//!
//! Generation follows Syzkaller's discipline: values are biased toward
//! interesting boundaries, `in` resources are wired to producing calls
//! (inserting producer calls on demand), and every generated program
//! satisfies [`Prog::validate`](crate::Prog::validate).

use rand::prelude::*;
use snowplow_syslang::{BufferKind, Dir, IntFormat, Registry, ResourceId, SyscallId, Type, TypeId};

use crate::arg::{Arg, ResSource};
use crate::prog::{Call, Prog};

/// Base fake address for pointer payloads (mirrors Syzkaller's data area).
const DATA_AREA: u64 = 0x2000_0000;
/// Maximum producer-chain depth when wiring resources.
const MAX_RESOURCE_DEPTH: u32 = 4;
/// Filenames available in the test working directory.
const FILENAMES: &[&str] = &["./file0", "./file1", "./file2", "./file3"];

/// Generates random, valid test programs over a registry.
#[derive(Debug, Clone, Copy)]
pub struct Generator<'r> {
    reg: &'r Registry,
}

impl<'r> Generator<'r> {
    /// Creates a generator for `reg`.
    pub fn new(reg: &'r Registry) -> Self {
        Generator { reg }
    }

    /// Generates a program with up to `max_calls` *requested* calls.
    /// Resource wiring may add producer calls, so the result can be a few
    /// calls longer; it is never empty.
    pub fn generate(&self, rng: &mut StdRng, max_calls: usize) -> Prog {
        let mut prog = Prog::new();
        let n = rng.random_range(1..=max_calls.max(1));
        for _ in 0..n {
            let def = SyscallId(rng.random_range(0..self.reg.syscall_count() as u32));
            self.append_call(rng, &mut prog, def, 0);
            if prog.len() >= max_calls + 4 {
                break;
            }
        }
        prog.finalize(self.reg);
        prog
    }

    /// Appends a call to `def` (plus any producer calls its resources
    /// need) to `prog`. Returns the index of the appended call.
    pub fn append_call(
        &self,
        rng: &mut StdRng,
        prog: &mut Prog,
        def: SyscallId,
        depth: u32,
    ) -> usize {
        let fields = self.reg.syscall(def).args.clone();
        let mut addr = DATA_AREA + (prog.len() as u64) * 0x1000;
        let args = fields
            .iter()
            .map(|f| self.gen_arg(rng, prog, f.ty, &mut addr, depth))
            .collect();
        prog.calls.push(Call { def, args });
        prog.len() - 1
    }

    /// Generates one argument value for description type `ty`. May append
    /// producer calls to `prog` when wiring `in` resources.
    pub fn gen_arg(
        &self,
        rng: &mut StdRng,
        prog: &mut Prog,
        ty: TypeId,
        addr: &mut u64,
        depth: u32,
    ) -> Arg {
        match self.reg.ty(ty).clone() {
            Type::Int { bits, format } => Arg::int(gen_int(rng, bits, &format)),
            Type::Flags { values, bits, .. } => Arg::int(gen_flags(rng, &values, bits)),
            Type::Const { value, .. } => Arg::int(value),
            Type::Len { .. } => Arg::int(0), // computed by finalize
            Type::Ptr { elem, optional, .. } => {
                if optional && rng.random_bool(0.25) {
                    Arg::null()
                } else {
                    let a = *addr;
                    *addr += 0x100;
                    let inner = self.gen_arg(rng, prog, elem, addr, depth);
                    Arg::ptr(a, inner)
                }
            }
            Type::Buffer { kind } => Arg::Data {
                bytes: gen_buffer(rng, &kind),
            },
            Type::Array {
                elem,
                min_len,
                max_len,
            } => {
                let n = rng.random_range(min_len..=max_len.min(min_len + 4));
                let inner = (0..n)
                    .map(|_| self.gen_arg(rng, prog, elem, addr, depth))
                    .collect();
                Arg::Group { inner }
            }
            Type::Struct { fields, .. } => {
                let inner = fields
                    .iter()
                    .map(|f| self.gen_arg(rng, prog, f.ty, addr, depth))
                    .collect();
                Arg::Group { inner }
            }
            Type::Union { variants, .. } => {
                let variant = rng.random_range(0..variants.len()) as u16;
                let inner = self.gen_arg(rng, prog, variants[variant as usize].ty, addr, depth);
                Arg::Union {
                    variant,
                    inner: Box::new(inner),
                }
            }
            Type::Resource { kind, dir } => {
                if dir == Dir::In || dir == Dir::InOut {
                    Arg::Res {
                        source: self.wire_resource(rng, prog, kind, depth),
                    }
                } else {
                    Arg::Res {
                        source: ResSource::Special(0),
                    }
                }
            }
        }
    }

    /// Finds or creates a producer for resource `kind`.
    fn wire_resource(
        &self,
        rng: &mut StdRng,
        prog: &mut Prog,
        kind: ResourceId,
        depth: u32,
    ) -> ResSource {
        // Prefer an existing producer in the program.
        let existing: Vec<usize> = prog
            .calls
            .iter()
            .enumerate()
            .filter(|(_, c)| self.reg.syscall(c.def).ret == Some(kind))
            .map(|(i, _)| i)
            .collect();
        if !existing.is_empty() && rng.random_bool(0.8) {
            // Invariant: `existing` is nonempty on this branch.
            return ResSource::Ref(*existing.choose(rng).expect("nonempty"));
        }
        // Otherwise insert a producer chain, unless too deep.
        let producers = self.reg.producers_of(kind);
        if depth < MAX_RESOURCE_DEPTH && !producers.is_empty() && rng.random_bool(0.92) {
            // Invariant: `producers` is nonempty on this branch.
            let def = *producers.choose(rng).expect("nonempty");
            let idx = self.append_call(rng, prog, def, depth + 1);
            return ResSource::Ref(idx);
        }
        let specials = &self.reg.resource(kind).special_values;
        ResSource::Special(specials.first().copied().unwrap_or(u64::MAX))
    }
}

/// Generates a biased integer for the given format.
pub fn gen_int(rng: &mut StdRng, bits: u8, format: &IntFormat) -> u64 {
    let mask = width_mask(bits);
    match format {
        IntFormat::Any => {
            let v = match rng.random_range(0..8u32) {
                0 => 0,
                1 => 1,
                2 => rng.random_range(0..16),
                3 => 1u64 << rng.random_range(0..u32::from(bits)),
                4 => (1u64 << rng.random_range(0..u32::from(bits))).wrapping_sub(1),
                5 => u64::MAX,
                6 => rng.random_range(0..4096),
                _ => rng.random(),
            };
            v & mask
        }
        IntFormat::Range { lo, hi } => {
            if rng.random_bool(0.2) {
                // Invariant: a two-element array is never empty.
                *[*lo, *hi].choose(rng).expect("nonempty")
            } else {
                rng.random_range(*lo..=*hi)
            }
        }
        IntFormat::Enum { values } => {
            if values.is_empty() || rng.random_bool(0.05) {
                rng.random::<u64>() & mask
            } else {
                // Invariant: the empty case was handled above.
                *values.choose(rng).expect("nonempty") & mask
            }
        }
    }
}

/// Generates a flag word: usually one flag, sometimes a union of a few,
/// occasionally zero or random bits (Syzkaller's discipline).
pub fn gen_flags(rng: &mut StdRng, values: &[u64], bits: u8) -> u64 {
    let mask = width_mask(bits);
    if values.is_empty() {
        return rng.random::<u64>() & mask;
    }
    let roll = rng.random_range(0..100u32);
    // Invariant: the empty `values` case returned above.
    let v = if roll < 55 {
        *values.choose(rng).expect("nonempty")
    } else if roll < 80 {
        let a = *values.choose(rng).expect("nonempty");
        let b = *values.choose(rng).expect("nonempty");
        a | b
    } else if roll < 92 {
        0
    } else {
        rng.random::<u64>()
    };
    v & mask
}

/// Generates buffer payload bytes.
pub fn gen_buffer(rng: &mut StdRng, kind: &BufferKind) -> Vec<u8> {
    match kind {
        BufferKind::Blob { min_len, max_len } => {
            let n = rng.random_range(*min_len..=(*max_len).min(min_len + 32));
            (0..n).map(|_| rng.random()).collect()
        }
        BufferKind::String { values } => {
            if values.is_empty() {
                b"syz".to_vec()
            } else {
                // Invariant: the empty case was handled above.
                let mut v = values.choose(rng).expect("nonempty").as_bytes().to_vec();
                v.push(0);
                v
            }
        }
        BufferKind::Filename => {
            // Invariant: FILENAMES is a nonempty constant.
            let mut v = FILENAMES.choose(rng).expect("nonempty").as_bytes().to_vec();
            v.push(0);
            v
        }
    }
}

fn width_mask(bits: u8) -> u64 {
    if bits >= 64 {
        u64::MAX
    } else {
        (1u64 << bits) - 1
    }
}

#[cfg(test)]
mod tests {
    use snowplow_syslang::builtin;

    use super::*;

    #[test]
    fn programs_are_reproducible_per_seed() {
        let reg = builtin::linux_sim();
        let generator = Generator::new(&reg);
        let a = generator.generate(&mut StdRng::seed_from_u64(11), 5);
        let b = generator.generate(&mut StdRng::seed_from_u64(11), 5);
        assert_eq!(a, b);
        let c = generator.generate(&mut StdRng::seed_from_u64(12), 5);
        assert_ne!(a, c, "different seeds should give different programs");
    }

    #[test]
    fn resources_are_wired_to_producers() {
        let reg = builtin::linux_sim();
        let generator = Generator::new(&reg);
        let mut rng = StdRng::seed_from_u64(5);
        let mut wired = 0;
        for _ in 0..100 {
            let p = generator.generate(&mut rng, 6);
            for call in &p.calls {
                let mut refs = Vec::new();
                for a in &call.args {
                    a.collect_refs(&mut refs);
                }
                wired += refs.len();
            }
        }
        assert!(
            wired > 50,
            "expected plenty of resource wiring, got {wired}"
        );
    }

    #[test]
    fn int_respects_width_mask() {
        let mut rng = StdRng::seed_from_u64(0);
        for _ in 0..1000 {
            let v = gen_int(&mut rng, 8, &IntFormat::Any);
            assert!(v <= 0xff);
            let f = gen_flags(&mut rng, &[0x1, 0x80], 8);
            assert!(f <= 0xff);
        }
    }

    #[test]
    fn range_format_stays_in_range() {
        let mut rng = StdRng::seed_from_u64(0);
        for _ in 0..1000 {
            let v = gen_int(&mut rng, 32, &IntFormat::Range { lo: 10, hi: 20 });
            assert!((10..=20).contains(&v), "{v}");
        }
    }
}
