//! Serialization of programs to the syz-like text format.
//!
//! The format is a close cousin of Syzkaller's: one call per line, `rN =`
//! bindings for resource-producing calls, `&(addr)=payload` pointers,
//! hex-encoded data buffers, `{...}` structs, `[...]` arrays and
//! `@variant=value` unions. [`crate::parse`] parses it back; round-tripping
//! is lossless and property-tested.

use std::fmt;

use snowplow_syslang::{Registry, Type, TypeId};

use crate::arg::{Arg, ResSource};
use crate::prog::Prog;

/// Displays a program in text form (returned by
/// [`Prog::display`](crate::Prog::display)).
pub struct ProgDisplay<'a> {
    pub(crate) prog: &'a Prog,
    pub(crate) reg: &'a Registry,
}

impl fmt::Display for ProgDisplay<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (ci, call) in self.prog.calls.iter().enumerate() {
            let def = self.reg.syscall(call.def);
            if def.ret.is_some() {
                write!(f, "r{ci} = ")?;
            }
            write!(f, "{}(", def.name)?;
            for (ai, arg) in call.args.iter().enumerate() {
                if ai > 0 {
                    write!(f, ", ")?;
                }
                write_arg(f, self.reg, def.args[ai].ty, arg)?;
            }
            writeln!(f, ")")?;
        }
        Ok(())
    }
}

fn write_arg(f: &mut fmt::Formatter<'_>, reg: &Registry, ty: TypeId, arg: &Arg) -> fmt::Result {
    match (reg.ty(ty), arg) {
        (_, Arg::Int { value }) => write!(f, "{value:#x}"),
        (Type::Ptr { elem, .. }, Arg::Ptr { addr, inner }) => match inner {
            None => write!(f, "nil"),
            Some(a) => {
                write!(f, "&({addr:#x})=")?;
                write_arg(f, reg, *elem, a)
            }
        },
        (_, Arg::Data { bytes }) => {
            write!(f, "\"")?;
            for b in bytes {
                write!(f, "{b:02x}")?;
            }
            write!(f, "\"")
        }
        (Type::Struct { fields, .. }, Arg::Group { inner }) => {
            write!(f, "{{")?;
            for (i, (field, a)) in fields.iter().zip(inner).enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                write_arg(f, reg, field.ty, a)?;
            }
            write!(f, "}}")
        }
        (Type::Array { elem, .. }, Arg::Group { inner }) => {
            write!(f, "[")?;
            for (i, a) in inner.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                write_arg(f, reg, *elem, a)?;
            }
            write!(f, "]")
        }
        (Type::Union { variants, .. }, Arg::Union { variant, inner }) => {
            // An out-of-range variant is a shape violation (the linter's
            // union-variant-range rule); render it like other mismatches
            // instead of indexing out of bounds.
            match variants.get(*variant as usize) {
                Some(v) => {
                    write!(f, "@{}=", v.name)?;
                    write_arg(f, reg, v.ty, inner)
                }
                None => write!(f, "<invalid:variant {variant} of {}>", variants.len()),
            }
        }
        (_, Arg::Res { source }) => match source {
            ResSource::Ref(i) => write!(f, "r{i}"),
            ResSource::Special(v) => write!(f, "{v:#x}"),
        },
        // Shape mismatches cannot occur for validated programs; render
        // debug form to keep Display total.
        (_, arg) => write!(f, "<invalid:{arg:?}>"),
    }
}
