//! Programs and calls.

use snowplow_syslang::{ArgPath, Registry, SyscallId, Type};

use crate::arg::{Arg, ArgView};

/// One syscall invocation: a definition plus concrete top-level arguments
/// (whose trees parallel the definition's field types).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Call {
    /// Which syscall variant this invokes.
    pub def: SyscallId,
    /// Concrete top-level arguments, one per description field.
    pub args: Vec<Arg>,
}

impl Call {
    /// Resolves an argument path within this call.
    pub fn arg_at(&self, path: &ArgPath) -> Option<&Arg> {
        let top = path.top_arg()?;
        self.args.get(top)?.descend(&path.segments()[1..])
    }

    /// Mutable variant of [`Call::arg_at`].
    pub fn arg_at_mut(&mut self, path: &ArgPath) -> Option<&mut Arg> {
        let top = path.top_arg()?;
        self.args.get_mut(top)?.descend_mut(&path.segments()[1..])
    }

    /// A predicate-friendly view of the value at `path`, if present in
    /// this call's actual structure.
    pub fn view_at(&self, path: &ArgPath) -> Option<ArgView<'_>> {
        self.arg_at(path).map(Arg::view)
    }
}

/// A kernel test: an ordered sequence of calls with resource wiring.
///
/// Invariants maintained by every constructor and mutation in this crate
/// (checked by [`Prog::validate`]):
///
/// 1. every [`ResSource::Ref`](crate::arg::ResSource::Ref) points at an *earlier* call,
/// 2. the referenced call produces a resource (its def has `ret`),
/// 3. argument trees are structurally compatible with their description
///    types.
#[derive(Debug, Clone, Default, PartialEq, Eq, Hash)]
pub struct Prog {
    /// The calls, in execution order.
    pub calls: Vec<Call>,
}

impl Prog {
    /// Creates an empty program.
    pub fn new() -> Self {
        Prog::default()
    }

    /// Number of calls.
    pub fn len(&self) -> usize {
        self.calls.len()
    }

    /// Whether the program has no calls.
    pub fn is_empty(&self) -> bool {
        self.calls.is_empty()
    }

    /// Checks the program's structural invariants against `reg`.
    ///
    /// Returns a human-readable description of the first violation.
    pub fn validate(&self, reg: &Registry) -> Result<(), String> {
        for (ci, call) in self.calls.iter().enumerate() {
            let def = reg.syscall(call.def);
            if call.args.len() != def.args.len() {
                return Err(format!(
                    "call {ci} ({}): {} args, description wants {}",
                    def.name,
                    call.args.len(),
                    def.args.len()
                ));
            }
            for (ai, arg) in call.args.iter().enumerate() {
                check_shape(reg, def.args[ai].ty, arg)
                    .map_err(|e| format!("call {ci} ({}) arg {ai}: {e}", def.name))?;
            }
            let mut refs = Vec::new();
            for arg in &call.args {
                arg.collect_refs(&mut refs);
            }
            for r in refs {
                if r >= ci {
                    return Err(format!(
                        "call {ci} ({}) references call {r}, which does not precede it",
                        def.name
                    ));
                }
                if reg.syscall(self.calls[r].def).ret.is_none() {
                    return Err(format!(
                        "call {ci} ({}) references call {r}, which produces no resource",
                        def.name
                    ));
                }
            }
        }
        Ok(())
    }

    /// Recomputes every `Len` field from its sibling's current payload.
    /// Must be called after any structural mutation; all generators and
    /// mutators in this crate do so.
    pub fn finalize(&mut self, reg: &Registry) {
        for call in &mut self.calls {
            let def = reg.syscall(call.def);
            // Top-level length fields read sibling top-level args.
            let lens: Vec<(usize, usize)> = def
                .args
                .iter()
                .enumerate()
                .filter_map(|(i, f)| match reg.ty(f.ty) {
                    Type::Len { target, .. } => Some((i, *target)),
                    _ => None,
                })
                .collect();
            for (i, target) in lens {
                let v = call.args.get(target).map_or(0, Arg::payload_len);
                if let Some(Arg::Int { value }) = call.args.get_mut(i) {
                    *value = v;
                }
            }
            // Nested length fields inside structs.
            for (ai, field) in def.args.iter().enumerate() {
                if let Some(arg) = call.args.get_mut(ai) {
                    finalize_rec(reg, field.ty, arg);
                }
            }
        }
    }

    /// Renders the program in the syz-like text format.
    pub fn display<'a>(&'a self, reg: &'a Registry) -> crate::serialize::ProgDisplay<'a> {
        crate::serialize::ProgDisplay { prog: self, reg }
    }

    /// Parses a program from the syz-like text format.
    pub fn parse(reg: &Registry, text: &str) -> Result<Prog, crate::parse::ParseError> {
        crate::parse::parse_prog(reg, text)
    }
}

fn finalize_rec(reg: &Registry, ty: snowplow_syslang::TypeId, arg: &mut Arg) {
    match (reg.ty(ty), arg) {
        (Type::Ptr { elem, .. }, Arg::Ptr { inner: Some(a), .. }) => {
            finalize_rec(reg, *elem, a);
        }
        (Type::Struct { fields, .. }, Arg::Group { inner }) => {
            let lens: Vec<(usize, usize)> = fields
                .iter()
                .enumerate()
                .filter_map(|(i, f)| match reg.ty(f.ty) {
                    Type::Len { target, .. } => Some((i, *target)),
                    _ => None,
                })
                .collect();
            for (i, target) in lens {
                let v = inner.get(target).map_or(0, Arg::payload_len);
                if let Some(Arg::Int { value }) = inner.get_mut(i) {
                    *value = v;
                }
            }
            for (i, f) in fields.iter().enumerate() {
                if let Some(a) = inner.get_mut(i) {
                    finalize_rec(reg, f.ty, a);
                }
            }
        }
        (Type::Array { elem, .. }, Arg::Group { inner }) => {
            for a in inner {
                finalize_rec(reg, *elem, a);
            }
        }
        (Type::Union { variants, .. }, Arg::Union { variant, inner }) => {
            if let Some(v) = variants.get(*variant as usize) {
                finalize_rec(reg, v.ty, inner);
            }
        }
        _ => {}
    }
}

/// Checks that `arg`'s shape matches description type `ty`.
fn check_shape(reg: &Registry, ty: snowplow_syslang::TypeId, arg: &Arg) -> Result<(), String> {
    match (reg.ty(ty), arg) {
        (Type::Int { .. }, Arg::Int { .. })
        | (Type::Flags { .. }, Arg::Int { .. })
        | (Type::Const { .. }, Arg::Int { .. })
        | (Type::Len { .. }, Arg::Int { .. })
        | (Type::Buffer { .. }, Arg::Data { .. })
        | (Type::Resource { .. }, Arg::Res { .. }) => Ok(()),
        (Type::Ptr { elem, .. }, Arg::Ptr { inner, .. }) => match inner {
            Some(a) => check_shape(reg, *elem, a),
            None => Ok(()),
        },
        (Type::Struct { fields, name }, Arg::Group { inner }) => {
            if fields.len() != inner.len() {
                return Err(format!(
                    "struct {name}: {} fields, value has {}",
                    fields.len(),
                    inner.len()
                ));
            }
            for (f, a) in fields.iter().zip(inner) {
                check_shape(reg, f.ty, a)?;
            }
            Ok(())
        }
        (
            Type::Array {
                elem,
                min_len,
                max_len,
            },
            Arg::Group { inner },
        ) => {
            if inner.len() < *min_len || inner.len() > *max_len {
                return Err(format!(
                    "array length {} outside [{min_len}, {max_len}]",
                    inner.len()
                ));
            }
            for a in inner {
                check_shape(reg, *elem, a)?;
            }
            Ok(())
        }
        (Type::Union { variants, name }, Arg::Union { variant, inner }) => {
            let v = variants
                .get(*variant as usize)
                .ok_or_else(|| format!("union {name}: variant {variant} out of range"))?;
            check_shape(reg, v.ty, inner)
        }
        (ty, arg) => Err(format!(
            "type {} incompatible with value {arg:?}",
            ty.kind_name()
        )),
    }
}

#[cfg(test)]
mod tests {
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use snowplow_syslang::builtin;

    use super::*;
    use crate::gen::Generator;

    #[test]
    fn generated_programs_validate() {
        let reg = builtin::linux_sim();
        let generator = Generator::new(&reg);
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..200 {
            let p = generator.generate(&mut rng, 6);
            p.validate(&reg).expect("generated program must validate");
        }
    }

    #[test]
    fn finalize_computes_len_fields() {
        let reg = builtin::linux_sim();
        let generator = Generator::new(&reg);
        let mut rng = StdRng::seed_from_u64(3);
        // Find a program with a sendmsg (has nested Len fields).
        let sendmsg = reg.syscall_by_name("sendmsg$inet").unwrap();
        for _ in 0..500 {
            let p = generator.generate(&mut rng, 8);
            if let Some(call) = p.calls.iter().find(|c| c.def == sendmsg) {
                // namelen field (index 1 of msghdr) must equal payload of name.
                use snowplow_syslang::PathSegment as S;
                let msg = ArgPath::arg(1).child(S::Deref);
                let name = call.arg_at(&msg.child(S::Field(0)));
                let namelen = call.arg_at(&msg.child(S::Field(1)));
                if let (Some(name), Some(Arg::Int { value })) = (name, namelen) {
                    assert_eq!(*value, name.payload_len());
                    return;
                }
            }
        }
        panic!("no sendmsg generated in 500 tries");
    }

    #[test]
    fn validate_rejects_forward_refs() {
        let reg = builtin::linux_sim();
        let read = reg.syscall_by_name("read").unwrap();
        let p = Prog {
            calls: vec![Call {
                def: read,
                args: vec![
                    Arg::Res {
                        source: crate::arg::ResSource::Ref(0),
                    },
                    Arg::null(),
                    Arg::int(0),
                ],
            }],
        };
        assert!(p.validate(&reg).is_err());
    }
}
