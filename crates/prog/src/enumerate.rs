//! Enumeration of a program's argument sites.
//!
//! The mutation search space of a test is the set of all (call, path)
//! pairs naming a mutable value — the quantity the paper measures at >60
//! per test on average (§5.1). Enumeration walks the argument tree and the
//! description type tree in lock-step, so array elements get `Elem(i)`
//! segments and unions only expose their *active* variant.

use snowplow_syslang::{ArgPath, PathSegment, Registry, Type, TypeId};

use crate::arg::Arg;
use crate::prog::Prog;

/// One addressable argument site within a program.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArgSite {
    /// Index of the call within the program.
    pub call: usize,
    /// Path of the value within that call.
    pub path: ArgPath,
    /// Description type of the value.
    pub ty: TypeId,
    /// Whether the mutation engine may rewrite this value (constants and
    /// computed lengths are excluded, as in Syzkaller).
    pub mutable: bool,
}

/// Enumerates every argument site of `prog`, in deterministic
/// (call-then-path) order.
pub fn enumerate_sites(reg: &Registry, prog: &Prog) -> Vec<ArgSite> {
    let mut out = Vec::new();
    for (ci, call) in prog.calls.iter().enumerate() {
        let def = reg.syscall(call.def);
        for (ai, field) in def.args.iter().enumerate() {
            if let Some(arg) = call.args.get(ai) {
                walk(reg, ci, field.ty, arg, ArgPath::arg(ai), &mut out);
            }
        }
    }
    out
}

/// Enumerates only the mutable sites of `prog`.
pub fn mutable_sites(reg: &Registry, prog: &Prog) -> Vec<ArgSite> {
    enumerate_sites(reg, prog)
        .into_iter()
        .filter(|s| s.mutable)
        .collect()
}

fn walk(reg: &Registry, call: usize, ty: TypeId, arg: &Arg, path: ArgPath, out: &mut Vec<ArgSite>) {
    let t = reg.ty(ty);
    out.push(ArgSite {
        call,
        path: path.clone(),
        ty,
        mutable: t.is_mutable(),
    });
    match (t, arg) {
        (Type::Ptr { elem, .. }, Arg::Ptr { inner: Some(a), .. }) => {
            walk(reg, call, *elem, a, path.child(PathSegment::Deref), out);
        }
        (Type::Struct { fields, .. }, Arg::Group { inner }) => {
            for (i, (f, a)) in fields.iter().zip(inner).enumerate() {
                walk(
                    reg,
                    call,
                    f.ty,
                    a,
                    path.child(PathSegment::Field(i as u16)),
                    out,
                );
            }
        }
        (Type::Array { elem, .. }, Arg::Group { inner }) => {
            for (i, a) in inner.iter().enumerate() {
                walk(
                    reg,
                    call,
                    *elem,
                    a,
                    path.child(PathSegment::Elem(i as u16)),
                    out,
                );
            }
        }
        (Type::Union { variants, .. }, Arg::Union { variant, inner }) => {
            if let Some(v) = variants.get(*variant as usize) {
                walk(
                    reg,
                    call,
                    v.ty,
                    inner,
                    path.child(PathSegment::Variant(*variant)),
                    out,
                );
            }
        }
        _ => {}
    }
}

#[cfg(test)]
mod tests {
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use snowplow_syslang::builtin;

    use super::*;
    use crate::gen::Generator;

    #[test]
    fn sites_resolve_back_to_arguments() {
        let reg = builtin::linux_sim();
        let generator = Generator::new(&reg);
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..50 {
            let p = generator.generate(&mut rng, 6);
            for site in enumerate_sites(&reg, &p) {
                let arg = p.calls[site.call].arg_at(&site.path);
                assert!(arg.is_some(), "site {} does not resolve", site.path);
            }
        }
    }

    #[test]
    fn average_site_count_matches_paper_scale() {
        // §5.1: tests average >60 argument nodes. Our programs are a bit
        // smaller by default; check we are in the tens.
        let reg = builtin::linux_sim();
        let generator = Generator::new(&reg);
        let mut rng = StdRng::seed_from_u64(4);
        let mut total = 0usize;
        let n = 200;
        for _ in 0..n {
            let p = generator.generate(&mut rng, 8);
            total += enumerate_sites(&reg, &p).len();
        }
        let avg = total / n;
        assert!(avg >= 20, "average sites {avg} too small");
    }

    #[test]
    fn mutable_excludes_consts_and_lens() {
        let reg = builtin::linux_sim();
        let generator = Generator::new(&reg);
        let mut rng = StdRng::seed_from_u64(9);
        let p = generator.generate(&mut rng, 8);
        for site in mutable_sites(&reg, &p) {
            let t = reg.ty(site.ty);
            assert!(t.is_mutable());
        }
    }
}
