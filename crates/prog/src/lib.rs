//! Kernel test programs and the mutation engine.
//!
//! This crate is the analogue of Syzkaller's `prog` package for the
//! Snowplow reproduction: it defines the in-memory representation of a
//! kernel test ([`Prog`]: a sequence of syscall invocations with nested
//! argument trees and resource wiring), random program generation,
//! serialization to and parsing from a syz-like text format, enumeration of
//! all mutable argument sites, and the mutation engine factored exactly as
//! the paper's Figure 1 into *selector* (which mutation type), *localizer*
//! (which argument) and *instantiator* (which new value).
//!
//! The localizer is a trait ([`mutate::ArgLocalizer`]) so that the learned
//! PMM localizer from `snowplow-pmm` plugs in where the default random
//! localizer sits — the exact intervention point of the paper.
//!
//! ```
//! use snowplow_syslang::builtin;
//! use snowplow_prog::{gen::Generator, Prog};
//! use rand::{rngs::StdRng, SeedableRng};
//!
//! let reg = builtin::linux_sim();
//! let mut rng = StdRng::seed_from_u64(7);
//! let prog = Generator::new(&reg).generate(&mut rng, 5);
//! assert!(!prog.calls.is_empty());
//! let text = prog.display(&reg).to_string();
//! let back = Prog::parse(&reg, &text).unwrap();
//! assert_eq!(prog, back);
//! ```

pub mod arg;
pub mod enumerate;
pub mod gen;
pub mod mutate;
pub mod parse;
pub mod prog;
pub mod serialize;
pub mod validator;

pub use arg::{Arg, ArgView, ResSource};
pub use enumerate::{enumerate_sites, ArgSite};
pub use mutate::{
    ArgLoc, ArgLocalizer, Instantiator, MutationType, Mutator, MutatorConfig, RandomLocalizer,
    Selector, WeightedSelector,
};
pub use prog::{Call, Prog};
pub use validator::{set_debug_validator, ProgValidator};
