//! Debug-build validation hook for the mutation engine.
//!
//! `snowplow-prog` sits below the analysis crate in the dependency
//! graph, so it cannot call the linter directly. Instead it exposes a
//! process-global hook: `snowplow-analysis` installs its linter here
//! (via `install_debug_validator`), and every `Mutator` output is then
//! checked in debug builds. A violation panics immediately, pointing at
//! the mutation that produced the invalid program instead of letting it
//! corrupt a corpus.

use std::sync::OnceLock;

use snowplow_syslang::Registry;

use crate::Prog;

/// A full-program semantic validator: `Err` carries a rendered
/// diagnostic for the first violation.
pub type ProgValidator = fn(&Registry, &Prog) -> Result<(), String>;

static DEBUG_VALIDATOR: OnceLock<ProgValidator> = OnceLock::new();

/// Installs `f` as the debug-build mutation validator. The first
/// installation wins; later calls are no-ops (the hook is process-wide).
pub fn set_debug_validator(f: ProgValidator) {
    let _ = DEBUG_VALIDATOR.set(f);
}

/// Runs the installed validator against `prog` in debug builds,
/// panicking on a violation. Release builds and builds where no
/// validator was installed check nothing.
#[inline]
pub(crate) fn debug_validate(reg: &Registry, prog: &Prog) {
    if cfg!(debug_assertions) {
        if let Some(f) = DEBUG_VALIDATOR.get() {
            if let Err(msg) = f(reg, prog) {
                panic!("mutation produced an invalid program: {msg}");
            }
        }
    }
}
