//! The mutation engine, factored as in the paper's Figure 1.
//!
//! Three policy decisions shape every mutation:
//!
//! 1. **type selection** ([`Selector`]): what kind of mutation — argument
//!    mutation, call insertion, or call removal;
//! 2. **localization** ([`ArgLocalizer`]): *where* to apply an argument
//!    mutation. This is the decision Snowplow learns; the default
//!    [`RandomLocalizer`] reproduces Syzkaller's semi-random policy
//!    (weight calls by arity, then pick a uniformly random mutable site);
//! 3. **instantiation** ([`Instantiator`]): *how* to rewrite the chosen
//!    value.
//!
//! All mutations preserve program validity: resource references stay
//! backward-pointing, and length fields are recomputed.

use rand::prelude::*;
use snowplow_syslang::{ArgPath, Dir, PathSegment, Registry, SyscallId, Type, TypeId};

use crate::arg::{Arg, ResSource};
use crate::enumerate::{mutable_sites, ArgSite};
use crate::gen::{gen_buffer, gen_flags, gen_int};
use crate::prog::{Call, Prog};

/// High-level mutation kinds (the paper's `m_type`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MutationType {
    /// Rewrite one or more argument values of existing calls.
    ArgumentMutation,
    /// Insert a new call.
    CallInsertion,
    /// Remove an existing call.
    CallRemoval,
}

/// The location of one argument mutation: a call index plus a path into
/// its argument tree.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ArgLoc {
    /// Call index within the program.
    pub call: usize,
    /// Path of the value within the call.
    pub path: ArgPath,
}

impl ArgLoc {
    /// Convenience constructor.
    pub fn new(call: usize, path: ArgPath) -> Self {
        ArgLoc { call, path }
    }
}

/// Chooses the mutation type for the next mutation.
pub trait Selector {
    /// Picks a mutation type for `prog`.
    fn select(&mut self, rng: &mut StdRng, prog: &Prog) -> MutationType;
}

/// Syzkaller-style fixed-probability type selection.
#[derive(Debug, Clone, Copy)]
pub struct WeightedSelector {
    /// Probability of argument mutation.
    pub argument: f64,
    /// Probability of call insertion (removal gets the remainder).
    pub insertion: f64,
}

impl Default for WeightedSelector {
    fn default() -> Self {
        // Syzkaller heavily favors argument mutation for existing corpus
        // programs; these defaults mirror that bias.
        WeightedSelector {
            argument: 0.65,
            insertion: 0.25,
        }
    }
}

impl Selector for WeightedSelector {
    fn select(&mut self, rng: &mut StdRng, prog: &Prog) -> MutationType {
        let roll: f64 = rng.random();
        if roll < self.argument || prog.len() <= 1 {
            MutationType::ArgumentMutation
        } else if roll < self.argument + self.insertion {
            MutationType::CallInsertion
        } else {
            MutationType::CallRemoval
        }
    }
}

/// Chooses which argument(s) to mutate.
///
/// This is the paper's intervention point: Snowplow replaces the default
/// implementation with the learned PMM localizer.
pub trait ArgLocalizer {
    /// Returns candidate locations, most-preferred first. An empty result
    /// means "no opinion" and the caller falls back to random choice.
    fn localize(&mut self, reg: &Registry, prog: &Prog, rng: &mut StdRng) -> Vec<ArgLoc>;
}

/// Syzkaller's default policy: weight calls by arity, then pick a uniform
/// random mutable site of the chosen call. `count` sites are drawn without
/// replacement (the paper's Rand.K baseline uses `count = 8`).
#[derive(Debug, Clone, Copy)]
pub struct RandomLocalizer {
    /// How many distinct locations to return.
    pub count: usize,
}

impl Default for RandomLocalizer {
    fn default() -> Self {
        RandomLocalizer { count: 1 }
    }
}

impl ArgLocalizer for RandomLocalizer {
    fn localize(&mut self, reg: &Registry, prog: &Prog, rng: &mut StdRng) -> Vec<ArgLoc> {
        let mut sites = mutable_sites(reg, prog);
        if sites.is_empty() {
            return Vec::new();
        }
        // Weight the *first* draw toward calls with the largest arity,
        // mirroring Syzkaller's localizer; subsequent draws are uniform
        // over the remaining sites.
        let mut out = Vec::with_capacity(self.count);
        if let Some(first) = weighted_first_site(&sites, rng) {
            sites.retain(|s| !(s.call == first.call && s.path == first.path));
            out.push(ArgLoc::new(first.call, first.path));
        }
        while out.len() < self.count && !sites.is_empty() {
            let i = rng.random_range(0..sites.len());
            let s = sites.swap_remove(i);
            out.push(ArgLoc::new(s.call, s.path));
        }
        out
    }
}

fn weighted_first_site(sites: &[ArgSite], rng: &mut StdRng) -> Option<ArgSite> {
    if sites.is_empty() {
        return None;
    }
    // Per-call site counts serve as arity weights.
    // Invariant: `sites` is non-empty (checked above), so max() exists.
    let max_call = sites.iter().map(|s| s.call).max().expect("nonempty");
    let mut weights = vec![0usize; max_call + 1];
    for s in sites {
        weights[s.call] += 1;
    }
    let total: usize = weights.iter().sum();
    // Invariant: `pick < total` and the weights sum to `total`, so the
    // cumulative scan always lands on some call index.
    let mut pick = rng.random_range(0..total);
    let call = weights
        .iter()
        .position(|&w| {
            if pick < w {
                true
            } else {
                pick -= w;
                false
            }
        })
        .expect("weights sum to total");
    let call_sites: Vec<&ArgSite> = sites.iter().filter(|s| s.call == call).collect();
    call_sites.choose(rng).map(|s| (*s).clone())
}

/// Rewrites argument values in place, preserving validity.
#[derive(Debug, Clone, Copy)]
pub struct Instantiator<'r> {
    reg: &'r Registry,
}

impl<'r> Instantiator<'r> {
    /// Creates an instantiator over `reg`.
    pub fn new(reg: &'r Registry) -> Self {
        Instantiator { reg }
    }

    /// Mutates the value at `loc`. Returns `false` when the location does
    /// not resolve (e.g. a union switched away underneath it) or the type
    /// is not mutable.
    pub fn mutate_at(&self, rng: &mut StdRng, prog: &mut Prog, loc: &ArgLoc) -> bool {
        let Some(ty) = site_type(self.reg, prog, loc) else {
            return false;
        };
        if !self.reg.ty(ty).is_mutable() {
            return false;
        }
        let call_idx = loc.call;
        let new_value = {
            let Some(cur) = prog.calls[call_idx].arg_at(&loc.path) else {
                return false;
            };
            self.mutated_value(rng, ty, cur, call_idx, prog)
        };
        let Some(slot) = prog.calls[call_idx].arg_at_mut(&loc.path) else {
            return false;
        };
        *slot = new_value;
        prog.finalize(self.reg);
        true
    }

    /// Produces a fresh value of type `ty` for an argument of call
    /// `call_idx`, wiring any resources to producers *earlier* than that
    /// call (or special values), so validity is preserved.
    pub fn regen_value(&self, rng: &mut StdRng, ty: TypeId, call_idx: usize, prog: &Prog) -> Arg {
        match self.reg.ty(ty).clone() {
            Type::Int { bits, format } => Arg::int(gen_int(rng, bits, &format)),
            Type::Flags { values, bits, .. } => Arg::int(gen_flags(rng, &values, bits)),
            Type::Const { value, .. } => Arg::int(value),
            Type::Len { .. } => Arg::int(0),
            Type::Ptr { elem, optional, .. } => {
                if optional && rng.random_bool(0.2) {
                    Arg::null()
                } else {
                    Arg::ptr(
                        0x2000_0000 + rng.random_range(0..0x100u64) * 0x100,
                        self.regen_value(rng, elem, call_idx, prog),
                    )
                }
            }
            Type::Buffer { kind } => Arg::Data {
                bytes: gen_buffer(rng, &kind),
            },
            Type::Array {
                elem,
                min_len,
                max_len,
            } => {
                let n = rng.random_range(min_len..=max_len.min(min_len + 4));
                Arg::Group {
                    inner: (0..n)
                        .map(|_| self.regen_value(rng, elem, call_idx, prog))
                        .collect(),
                }
            }
            Type::Struct { fields, .. } => Arg::Group {
                inner: fields
                    .iter()
                    .map(|f| self.regen_value(rng, f.ty, call_idx, prog))
                    .collect(),
            },
            Type::Union { variants, .. } => {
                let variant = rng.random_range(0..variants.len()) as u16;
                Arg::Union {
                    variant,
                    inner: Box::new(self.regen_value(
                        rng,
                        variants[variant as usize].ty,
                        call_idx,
                        prog,
                    )),
                }
            }
            Type::Resource { kind, .. } => Arg::Res {
                source: self.pick_resource(rng, kind, call_idx, prog),
            },
        }
    }

    fn pick_resource(
        &self,
        rng: &mut StdRng,
        kind: snowplow_syslang::ResourceId,
        call_idx: usize,
        prog: &Prog,
    ) -> ResSource {
        let producers: Vec<usize> = prog.calls[..call_idx.min(prog.len())]
            .iter()
            .enumerate()
            .filter(|(_, c)| self.reg.syscall(c.def).ret == Some(kind))
            .map(|(i, _)| i)
            .collect();
        if !producers.is_empty() && rng.random_bool(0.85) {
            // Invariant: non-emptiness is checked in this branch's guard.
            ResSource::Ref(*producers.choose(rng).expect("nonempty"))
        } else {
            let specials = &self.reg.resource(kind).special_values;
            ResSource::Special(specials.first().copied().unwrap_or(u64::MAX))
        }
    }

    /// Produces a mutated version of `cur` (type-aware small steps most of
    /// the time, full regeneration sometimes).
    fn mutated_value(
        &self,
        rng: &mut StdRng,
        ty: TypeId,
        cur: &Arg,
        call_idx: usize,
        prog: &Prog,
    ) -> Arg {
        match (self.reg.ty(ty).clone(), cur) {
            (Type::Int { bits, format }, Arg::Int { value }) => {
                let v = match rng.random_range(0..4u32) {
                    0 => gen_int(rng, bits, &format),
                    1 => value.wrapping_add(rng.random_range(1..9)),
                    2 => value.wrapping_sub(rng.random_range(1..9)),
                    _ => value ^ (1 << rng.random_range(0..u32::from(bits.max(1)))),
                };
                let v = match &format {
                    snowplow_syslang::IntFormat::Range { lo, hi } => v.clamp(*lo, *hi),
                    _ => v & mask(bits),
                };
                Arg::int(v)
            }
            (Type::Flags { values, bits, .. }, Arg::Int { value }) => {
                let v = if !values.is_empty() && rng.random_bool(0.6) {
                    // Invariant: non-emptiness is checked in the guard.
                    value ^ values.choose(rng).expect("nonempty")
                } else {
                    gen_flags(rng, &values, bits)
                };
                Arg::int(v & mask(bits))
            }
            (Type::Buffer { kind }, Arg::Data { bytes }) => {
                let mut b = bytes.clone();
                match rng.random_range(0..3u32) {
                    0 => {
                        return Arg::Data {
                            bytes: gen_buffer(rng, &kind),
                        }
                    }
                    1 if !b.is_empty() => {
                        let i = rng.random_range(0..b.len());
                        b[i] = rng.random();
                    }
                    _ => b.push(rng.random()),
                }
                Arg::Data { bytes: b }
            }
            (Type::Ptr { elem, optional, .. }, Arg::Ptr { addr, inner }) => match inner {
                None => Arg::ptr(0x2000_0000, self.regen_value(rng, elem, call_idx, prog)),
                Some(inner_arg) => {
                    if optional && rng.random_bool(0.15) {
                        Arg::null()
                    } else {
                        Arg::Ptr {
                            addr: *addr,
                            inner: Some(Box::new(
                                self.mutated_value(rng, elem, inner_arg, call_idx, prog),
                            )),
                        }
                    }
                }
            },
            (
                Type::Array {
                    elem,
                    min_len,
                    max_len,
                },
                Arg::Group { inner },
            ) => {
                let mut inner = inner.clone();
                let can_grow = inner.len() < max_len;
                let can_shrink = inner.len() > min_len;
                match rng.random_range(0..3u32) {
                    0 if can_grow => inner.push(self.regen_value(rng, elem, call_idx, prog)),
                    1 if can_shrink => {
                        let i = rng.random_range(0..inner.len());
                        inner.remove(i);
                    }
                    _ if !inner.is_empty() => {
                        let i = rng.random_range(0..inner.len());
                        let nv = self.mutated_value(rng, elem, &inner[i], call_idx, prog);
                        inner[i] = nv;
                    }
                    _ => {}
                }
                Arg::Group { inner }
            }
            (Type::Struct { fields, .. }, Arg::Group { inner }) => {
                // Mutating a struct site mutates one random field.
                let mut inner = inner.clone();
                if !fields.is_empty() && !inner.is_empty() {
                    let i = rng.random_range(0..fields.len().min(inner.len()));
                    let nv = self.mutated_value(rng, fields[i].ty, &inner[i], call_idx, prog);
                    inner[i] = nv;
                }
                Arg::Group { inner }
            }
            (Type::Union { variants, .. }, Arg::Union { variant, inner }) => {
                if variants.len() > 1 && rng.random_bool(0.5) {
                    // Switch variant.
                    let mut nv = rng.random_range(0..variants.len()) as u16;
                    if nv == *variant {
                        nv = (nv + 1) % variants.len() as u16;
                    }
                    Arg::Union {
                        variant: nv,
                        inner: Box::new(self.regen_value(
                            rng,
                            variants[nv as usize].ty,
                            call_idx,
                            prog,
                        )),
                    }
                } else {
                    Arg::Union {
                        variant: *variant,
                        inner: Box::new(self.mutated_value(
                            rng,
                            variants[*variant as usize].ty,
                            inner,
                            call_idx,
                            prog,
                        )),
                    }
                }
            }
            (Type::Resource { kind, .. }, Arg::Res { .. }) => Arg::Res {
                source: self.pick_resource(rng, kind, call_idx, prog),
            },
            // Shape drifted (shouldn't happen for validated programs):
            // regenerate wholesale.
            _ => self.regen_value(rng, ty, call_idx, prog),
        }
    }
}

/// Resolves the description type at a program location, honoring the
/// program's actual structure (active union variants, array arity).
pub fn site_type(reg: &Registry, prog: &Prog, loc: &ArgLoc) -> Option<TypeId> {
    let call = prog.calls.get(loc.call)?;
    let def = reg.syscall(call.def);
    let mut segs = loc.path.segments().iter();
    let mut ty = match segs.next()? {
        PathSegment::Arg(i) => def.args.get(*i as usize)?.ty,
        _ => return None,
    };
    for seg in segs {
        ty = match (seg, reg.ty(ty)) {
            (PathSegment::Deref, Type::Ptr { elem, .. }) => *elem,
            (PathSegment::Field(i), Type::Struct { fields, .. }) => fields.get(*i as usize)?.ty,
            (PathSegment::Elem(_), Type::Array { elem, .. }) => *elem,
            (PathSegment::Variant(i), Type::Union { variants, .. }) => {
                variants.get(*i as usize)?.ty
            }
            _ => return None,
        };
    }
    Some(ty)
}

/// Configuration of the full mutation engine.
#[derive(Debug, Clone, Copy)]
pub struct MutatorConfig {
    /// Type-selection weights.
    pub selector: WeightedSelector,
    /// Maximum program length; insertions beyond this are skipped.
    pub max_calls: usize,
}

impl Default for MutatorConfig {
    fn default() -> Self {
        MutatorConfig {
            selector: WeightedSelector::default(),
            max_calls: 16,
        }
    }
}

/// The complete mutation engine (selector + localizer + instantiator).
#[derive(Debug)]
pub struct Mutator<'r> {
    reg: &'r Registry,
    config: MutatorConfig,
    selector: WeightedSelector,
    localizer: RandomLocalizer,
}

/// The outcome of one mutation, for dataset collection and debugging.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MutationOutcome {
    /// What kind of mutation was applied.
    pub ty: MutationType,
    /// Argument locations rewritten (empty for call-level mutations).
    pub locs: Vec<ArgLoc>,
}

impl<'r> Mutator<'r> {
    /// Creates a mutation engine with default configuration.
    pub fn new(reg: &'r Registry) -> Self {
        Mutator::with_config(reg, MutatorConfig::default())
    }

    /// Creates a mutation engine with explicit configuration.
    pub fn with_config(reg: &'r Registry, config: MutatorConfig) -> Self {
        Mutator {
            reg,
            config,
            selector: config.selector,
            localizer: RandomLocalizer::default(),
        }
    }

    /// The registry this engine mutates over.
    pub fn registry(&self) -> &'r Registry {
        self.reg
    }

    /// Applies one full mutation (select, localize, instantiate).
    pub fn mutate(&mut self, rng: &mut StdRng, prog: &Prog) -> (Prog, MutationOutcome) {
        let ty = self.selector.select(rng, prog);
        match ty {
            MutationType::ArgumentMutation => {
                let (p, locs) = self.mutate_arguments(rng, prog, None);
                (
                    p,
                    MutationOutcome {
                        ty: MutationType::ArgumentMutation,
                        locs,
                    },
                )
            }
            MutationType::CallInsertion => (
                self.insert_call(rng, prog),
                MutationOutcome {
                    ty: MutationType::CallInsertion,
                    locs: Vec::new(),
                },
            ),
            MutationType::CallRemoval => (
                self.remove_call(rng, prog),
                MutationOutcome {
                    ty: MutationType::CallRemoval,
                    locs: Vec::new(),
                },
            ),
        }
    }

    /// Applies an argument mutation. When `locs` is `Some`, those locations
    /// are used (this is how PMM-predicted localizations are applied);
    /// otherwise the default random localizer picks one.
    pub fn mutate_arguments(
        &mut self,
        rng: &mut StdRng,
        prog: &Prog,
        locs: Option<&[ArgLoc]>,
    ) -> (Prog, Vec<ArgLoc>) {
        let mut p = prog.clone();
        let inst = Instantiator::new(self.reg);
        let chosen: Vec<ArgLoc> = match locs {
            Some(l) => l.to_vec(),
            None => self.localizer.localize(self.reg, prog, rng),
        };
        let mut applied = Vec::new();
        for loc in &chosen {
            if inst.mutate_at(rng, &mut p, loc) {
                applied.push(loc.clone());
            }
        }
        crate::validator::debug_validate(self.reg, &p);
        (p, applied)
    }

    /// Inserts one call at a random position, biased toward calls that
    /// interact with resource kinds the program already uses.
    pub fn insert_call(&self, rng: &mut StdRng, prog: &Prog) -> Prog {
        if prog.len() >= self.config.max_calls {
            return prog.clone();
        }
        let mut p = prog.clone();
        let pos = rng.random_range(0..=p.len());
        // Shift references at or past the insertion point.
        for call in &mut p.calls[pos..] {
            for arg in &mut call.args {
                arg.remap_refs(&|i| Some(if i >= pos { i + 1 } else { i }), u64::MAX);
            }
        }
        let def = self.pick_insertion_def(rng, prog);
        let inst = Instantiator::new(self.reg);
        let fields = self.reg.syscall(def).args.clone();
        // Build args wired only to producers before `pos`.
        let tmp = Prog {
            calls: p.calls[..pos].to_vec(),
        };
        let args = fields
            .iter()
            .map(|f| inst.regen_value(rng, f.ty, pos, &tmp))
            .collect();
        p.calls.insert(pos, Call { def, args });
        p.finalize(self.reg);
        crate::validator::debug_validate(self.reg, &p);
        p
    }

    fn pick_insertion_def(&self, rng: &mut StdRng, prog: &Prog) -> SyscallId {
        // Resource kinds live in the program: kinds produced by its calls.
        let produced: Vec<snowplow_syslang::ResourceId> = prog
            .calls
            .iter()
            .filter_map(|c| self.reg.syscall(c.def).ret)
            .collect();
        if !produced.is_empty() && rng.random_bool(0.6) {
            // Prefer a call that consumes one of those kinds.
            // Invariant: non-emptiness is checked in this branch's guard.
            let kind = *produced.choose(rng).expect("nonempty");
            let consumers: Vec<SyscallId> = self
                .reg
                .syscall_ids()
                .filter(|&id| {
                    self.reg.enumerate_paths(id).iter().any(|(_, t)| {
                        matches!(
                            self.reg.ty(*t),
                            Type::Resource { kind: k, dir } if *k == kind && dir.is_in()
                        )
                    })
                })
                .collect();
            if let Some(&id) = consumers.choose(rng) {
                return id;
            }
        }
        SyscallId(rng.random_range(0..self.reg.syscall_count() as u32))
    }

    /// Removes one random call, degrading dangling references to special
    /// values.
    pub fn remove_call(&self, rng: &mut StdRng, prog: &Prog) -> Prog {
        if prog.len() <= 1 {
            return prog.clone();
        }
        let mut p = prog.clone();
        let idx = rng.random_range(0..p.len());
        p.calls.remove(idx);
        for call in &mut p.calls {
            for arg in &mut call.args {
                arg.remap_refs(
                    &|i| {
                        if i == idx {
                            None
                        } else if i > idx {
                            Some(i - 1)
                        } else {
                            Some(i)
                        }
                    },
                    u64::MAX,
                );
            }
        }
        p.finalize(self.reg);
        crate::validator::debug_validate(self.reg, &p);
        p
    }
}

fn mask(bits: u8) -> u64 {
    if bits >= 64 {
        u64::MAX
    } else {
        (1u64 << bits) - 1
    }
}

/// Ignore the `Dir` import lint helper: direction checks are used above.
const _: fn(Dir) -> bool = Dir::is_in;

#[cfg(test)]
mod tests {
    use snowplow_syslang::builtin;

    use super::*;
    use crate::gen::Generator;

    fn setup() -> (snowplow_syslang::Registry, StdRng) {
        (builtin::linux_sim(), StdRng::seed_from_u64(77))
    }

    #[test]
    fn mutations_preserve_validity() {
        let (reg, mut rng) = setup();
        let generator = Generator::new(&reg);
        let mut mutator = Mutator::new(&reg);
        for i in 0..300 {
            let base = generator.generate(&mut rng, 6);
            let (mutant, outcome) = mutator.mutate(&mut rng, &base);
            mutant
                .validate(&reg)
                .unwrap_or_else(|e| panic!("iter {i} ({outcome:?}): {e}"));
        }
    }

    #[test]
    fn argument_mutation_changes_something_usually() {
        let (reg, mut rng) = setup();
        let generator = Generator::new(&reg);
        let mut mutator = Mutator::new(&reg);
        let mut changed = 0;
        let n = 200;
        for _ in 0..n {
            let base = generator.generate(&mut rng, 6);
            let (mutant, applied) = mutator.mutate_arguments(&mut rng, &base, None);
            if mutant != base {
                changed += 1;
            }
            assert!(applied.len() <= 1);
        }
        assert!(
            changed > n / 2,
            "only {changed}/{n} mutations changed the program"
        );
    }

    #[test]
    fn removal_fixes_references() {
        let (reg, mut rng) = setup();
        let generator = Generator::new(&reg);
        let mutator = Mutator::new(&reg);
        for _ in 0..200 {
            let base = generator.generate(&mut rng, 8);
            let p = mutator.remove_call(&mut rng, &base);
            p.validate(&reg).expect("removal must preserve validity");
        }
    }

    #[test]
    fn insertion_fixes_references() {
        let (reg, mut rng) = setup();
        let generator = Generator::new(&reg);
        let mutator = Mutator::new(&reg);
        for _ in 0..200 {
            let base = generator.generate(&mut rng, 8);
            let p = mutator.insert_call(&mut rng, &base);
            p.validate(&reg).expect("insertion must preserve validity");
            if base.len() < 16 {
                assert_eq!(p.len(), base.len() + 1);
            }
        }
    }

    #[test]
    fn explicit_locations_are_honored() {
        let (reg, mut rng) = setup();
        let generator = Generator::new(&reg);
        let mut mutator = Mutator::new(&reg);
        let base = generator.generate(&mut rng, 4);
        let sites = crate::enumerate::mutable_sites(&reg, &base);
        let loc = ArgLoc::new(sites[0].call, sites[0].path.clone());
        let (_, applied) =
            mutator.mutate_arguments(&mut rng, &base, Some(std::slice::from_ref(&loc)));
        assert_eq!(applied, vec![loc]);
    }

    #[test]
    fn random_localizer_returns_distinct_sites() {
        let (reg, mut rng) = setup();
        let generator = Generator::new(&reg);
        let base = generator.generate(&mut rng, 8);
        let mut loc8 = RandomLocalizer { count: 8 };
        let locs = loc8.localize(&reg, &base, &mut rng);
        let mut dedup = locs.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(dedup.len(), locs.len(), "locations must be distinct");
    }
}
