//! Parsing of the syz-like text format back into [`Prog`]s.
//!
//! The parser is type-directed: the registry's description of each call
//! tells it whether to expect a struct, array, union, buffer, resource, or
//! scalar at every position, so the text format needs no type annotations
//! beyond union variant names.

use std::fmt;

use snowplow_syslang::{Registry, Type, TypeId};

use crate::arg::{Arg, ResSource};
use crate::prog::{Call, Prog};

/// Error produced when parsing program text fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line of the failure.
    pub line: usize,
    /// Byte offset within the line.
    pub col: usize,
    /// Description of what went wrong.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "parse error at {}:{}: {}",
            self.line, self.col, self.message
        )
    }
}

impl std::error::Error for ParseError {}

/// Parses a full program.
pub fn parse_prog(reg: &Registry, text: &str) -> Result<Prog, ParseError> {
    let mut prog = Prog::new();
    for (lineno, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut p = Parser {
            reg,
            line,
            lineno: lineno + 1,
            pos: 0,
        };
        let call = p.parse_call(prog.len())?;
        prog.calls.push(call);
    }
    Ok(prog)
}

struct Parser<'a> {
    reg: &'a Registry,
    line: &'a str,
    lineno: usize,
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: impl Into<String>) -> ParseError {
        ParseError {
            line: self.lineno,
            col: self.pos + 1,
            message: message.into(),
        }
    }

    fn rest(&self) -> &'a str {
        &self.line[self.pos..]
    }

    fn peek(&self) -> Option<char> {
        self.rest().chars().next()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek()?;
        self.pos += c.len_utf8();
        Some(c)
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(' ') | Some('\t')) {
            self.bump();
        }
    }

    fn expect(&mut self, c: char) -> Result<(), ParseError> {
        self.skip_ws();
        if self.peek() == Some(c) {
            self.bump();
            Ok(())
        } else {
            Err(self.err(format!("expected '{c}', found {:?}", self.peek())))
        }
    }

    fn ident(&mut self) -> Result<&'a str, ParseError> {
        self.skip_ws();
        let start = self.pos;
        while matches!(self.peek(), Some(c) if c.is_ascii_alphanumeric() || c == '_' || c == '$') {
            self.bump();
        }
        if self.pos == start {
            return Err(self.err("expected identifier"));
        }
        Ok(&self.line[start..self.pos])
    }

    fn number(&mut self) -> Result<u64, ParseError> {
        self.skip_ws();
        let rest = self.rest();
        if let Some(hex) = rest.strip_prefix("0x") {
            let digits: String = hex.chars().take_while(|c| c.is_ascii_hexdigit()).collect();
            if digits.is_empty() {
                return Err(self.err("expected hex digits after 0x"));
            }
            self.pos += 2 + digits.len();
            u64::from_str_radix(&digits, 16).map_err(|e| self.err(format!("bad number: {e}")))
        } else {
            let digits: String = rest.chars().take_while(|c| c.is_ascii_digit()).collect();
            if digits.is_empty() {
                return Err(self.err("expected number"));
            }
            self.pos += digits.len();
            digits
                .parse()
                .map_err(|e| self.err(format!("bad number: {e}")))
        }
    }

    fn parse_call(&mut self, index: usize) -> Result<Call, ParseError> {
        self.skip_ws();
        // Optional `rN = ` binding.
        let save = self.pos;
        let mut name = self.ident()?;
        self.skip_ws();
        if name.starts_with('r')
            && name[1..].chars().all(|c| c.is_ascii_digit())
            && !name[1..].is_empty()
            && self.peek() == Some('=')
        {
            let bound: usize = name[1..].parse().map_err(|_| self.err("bad binding"))?;
            if bound != index {
                return Err(self.err(format!(
                    "binding r{bound} does not match call index {index}"
                )));
            }
            self.bump(); // '='
            name = self.ident()?;
        } else if self.peek() == Some('=') {
            return Err(self.err("unexpected '='"));
        } else {
            // Not a binding: rewind not needed, `name` is the call name.
            let _ = save;
        }
        let def = self
            .reg
            .syscall_by_name(name)
            .ok_or_else(|| self.err(format!("unknown syscall {name}")))?;
        self.expect('(')?;
        let fields = self.reg.syscall(def).args.clone();
        let mut args = Vec::with_capacity(fields.len());
        for (i, field) in fields.iter().enumerate() {
            if i > 0 {
                self.expect(',')?;
            }
            args.push(self.parse_arg(field.ty)?);
        }
        self.expect(')')?;
        self.skip_ws();
        if !self.rest().is_empty() {
            return Err(self.err(format!("trailing input: {:?}", self.rest())));
        }
        Ok(Call { def, args })
    }

    fn parse_arg(&mut self, ty: TypeId) -> Result<Arg, ParseError> {
        self.skip_ws();
        match self.reg.ty(ty).clone() {
            Type::Int { .. } | Type::Flags { .. } | Type::Const { .. } | Type::Len { .. } => {
                Ok(Arg::int(self.number()?))
            }
            Type::Ptr { elem, .. } => {
                if self.rest().starts_with("nil") {
                    self.pos += 3;
                    return Ok(Arg::null());
                }
                self.expect('&')?;
                self.expect('(')?;
                let addr = self.number()?;
                self.expect(')')?;
                self.expect('=')?;
                let inner = self.parse_arg(elem)?;
                Ok(Arg::ptr(addr, inner))
            }
            Type::Buffer { .. } => {
                self.expect('"')?;
                let hex: String = self
                    .rest()
                    .chars()
                    .take_while(|c| c.is_ascii_hexdigit())
                    .collect();
                self.pos += hex.len();
                self.expect('"')?;
                if !hex.len().is_multiple_of(2) {
                    return Err(self.err("odd-length hex buffer"));
                }
                let bytes = (0..hex.len())
                    .step_by(2)
                    .map(|i| {
                        u8::from_str_radix(&hex[i..i + 2], 16)
                            .map_err(|e| self.err(format!("bad hex byte: {e}")))
                    })
                    .collect::<Result<_, _>>()?;
                Ok(Arg::Data { bytes })
            }
            Type::Struct { fields, .. } => {
                self.expect('{')?;
                let mut inner = Vec::with_capacity(fields.len());
                for (i, f) in fields.iter().enumerate() {
                    if i > 0 {
                        self.expect(',')?;
                    }
                    inner.push(self.parse_arg(f.ty)?);
                }
                self.expect('}')?;
                Ok(Arg::Group { inner })
            }
            Type::Array { elem, .. } => {
                self.expect('[')?;
                let mut inner = Vec::new();
                self.skip_ws();
                if self.peek() != Some(']') {
                    loop {
                        inner.push(self.parse_arg(elem)?);
                        self.skip_ws();
                        if self.peek() == Some(',') {
                            self.bump();
                        } else {
                            break;
                        }
                    }
                }
                self.expect(']')?;
                Ok(Arg::Group { inner })
            }
            Type::Union { variants, name } => {
                self.expect('@')?;
                let vname = self.ident()?;
                let (vi, field) = variants
                    .iter()
                    .enumerate()
                    .find(|(_, f)| f.name == vname)
                    .ok_or_else(|| self.err(format!("union {name} has no variant {vname}")))?;
                self.expect('=')?;
                let inner = self.parse_arg(field.ty)?;
                Ok(Arg::Union {
                    variant: vi as u16,
                    inner: Box::new(inner),
                })
            }
            Type::Resource { .. } => {
                self.skip_ws();
                if self.peek() == Some('r') && !self.rest().starts_with("r0x") {
                    // `rN` reference.
                    self.bump();
                    let idx = self.number()? as usize;
                    Ok(Arg::Res {
                        source: ResSource::Ref(idx),
                    })
                } else {
                    Ok(Arg::Res {
                        source: ResSource::Special(self.number()?),
                    })
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use snowplow_syslang::builtin;

    use super::*;
    use crate::gen::Generator;

    #[test]
    fn round_trip_many_programs() {
        let reg = builtin::linux_sim();
        let generator = Generator::new(&reg);
        let mut rng = StdRng::seed_from_u64(21);
        for i in 0..300 {
            let p = generator.generate(&mut rng, 8);
            let text = p.display(&reg).to_string();
            let back = parse_prog(&reg, &text).unwrap_or_else(|e| panic!("iter {i}: {e}\n{text}"));
            assert_eq!(p, back, "round-trip mismatch at iter {i}\n{text}");
        }
    }

    #[test]
    fn parse_handles_comments_and_blanks() {
        let reg = builtin::linux_sim();
        let text = "# a comment\n\nr0 = open(&(0x20000000)=\"2e2f66696c653000\", 0x1, 0x1ff)\n";
        let p = parse_prog(&reg, text).expect("parses");
        assert_eq!(p.len(), 1);
        assert!(p.validate(&reg).is_ok());
    }

    #[test]
    fn error_reports_position() {
        let reg = builtin::linux_sim();
        let err = parse_prog(&reg, "bogus_call()").unwrap_err();
        assert_eq!(err.line, 1);
        assert!(err.message.contains("unknown syscall"));
    }

    #[test]
    fn binding_index_is_checked() {
        let reg = builtin::linux_sim();
        let text = "r5 = open(&(0x0)=\"2e2f6600\", 0x1, 0x0)";
        let err = parse_prog(&reg, text).unwrap_err();
        assert!(err.message.contains("does not match"), "{err}");
    }
}
