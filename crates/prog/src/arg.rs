//! Argument value trees.
//!
//! An [`Arg`] is the runtime counterpart of a description
//! [`Type`](snowplow_syslang::Type): the concrete value a test program
//! passes for one (possibly nested) argument. Argument trees parallel the
//! description type tree of their syscall; all structural walks in this
//! crate traverse the two in lock-step.

use snowplow_syslang::{ArgPath, PathSegment};

/// Where an `in`-resource argument gets its runtime value from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ResSource {
    /// The return value of the call at this index in the same program.
    /// The referenced call must produce a resource of the right kind and
    /// precede the referencing call.
    Ref(usize),
    /// A description-provided special value (e.g. `-1`, `AT_FDCWD`).
    Special(u64),
}

/// One concrete argument value.
///
/// The variants deliberately collapse several description types onto one
/// runtime shape (struct and fixed-layout arrays are both [`Arg::Group`];
/// ints, flag words, constants, and computed lengths are all
/// [`Arg::Int`]) — exactly like Syzkaller's `Arg` hierarchy.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Arg {
    /// A scalar (int, flags, const, or finalized length value).
    Int { value: u64 },
    /// A pointer: `inner == None` encodes NULL. `addr` is the fake
    /// user-space address the payload sits at (addresses matter only for
    /// serialization fidelity; the simulated kernel reads payloads
    /// structurally).
    Ptr { addr: u64, inner: Option<Box<Arg>> },
    /// A byte buffer payload (blob, string, or filename bytes).
    Data { bytes: Vec<u8> },
    /// A struct (fields in order) or array (elements in order).
    Group { inner: Vec<Arg> },
    /// A union with the active description-variant index.
    Union { variant: u16, inner: Box<Arg> },
    /// An `in` kernel resource.
    Res { source: ResSource },
}

impl Arg {
    /// Shorthand for an integer argument.
    pub fn int(value: u64) -> Arg {
        Arg::Int { value }
    }

    /// Shorthand for a NULL pointer.
    pub fn null() -> Arg {
        Arg::Ptr {
            addr: 0,
            inner: None,
        }
    }

    /// Shorthand for a pointer to `inner` at `addr`.
    pub fn ptr(addr: u64, inner: Arg) -> Arg {
        Arg::Ptr {
            addr,
            inner: Some(Box::new(inner)),
        }
    }

    /// Resolves `path` (relative to this argument) to the nested argument
    /// it names, if the program's actual structure contains it.
    ///
    /// Union segments only resolve when the active variant matches the
    /// path's recorded variant; NULL pointers and out-of-range array
    /// indices resolve to `None`. This "structure gate" is exactly how the
    /// simulated kernel's predicates treat absent values: the guarded
    /// branch is simply not taken.
    pub fn descend(&self, path: &[PathSegment]) -> Option<&Arg> {
        let mut cur = self;
        for seg in path {
            cur = match (seg, cur) {
                (PathSegment::Deref, Arg::Ptr { inner, .. }) => inner.as_deref()?,
                (PathSegment::Field(i), Arg::Group { inner }) => inner.get(*i as usize)?,
                (PathSegment::Elem(i), Arg::Group { inner }) => inner.get(*i as usize)?,
                (PathSegment::Variant(i), Arg::Union { variant, inner }) if variant == i => inner,
                _ => return None,
            };
        }
        Some(cur)
    }

    /// Mutable variant of [`Arg::descend`].
    pub fn descend_mut(&mut self, path: &[PathSegment]) -> Option<&mut Arg> {
        let mut cur = self;
        for seg in path {
            cur = match (seg, cur) {
                (PathSegment::Deref, Arg::Ptr { inner, .. }) => inner.as_deref_mut()?,
                (PathSegment::Field(i), Arg::Group { inner }) => inner.get_mut(*i as usize)?,
                (PathSegment::Elem(i), Arg::Group { inner }) => inner.get_mut(*i as usize)?,
                (PathSegment::Variant(i), Arg::Union { variant, inner }) if *variant == *i => {
                    inner.as_mut()
                }
                _ => return None,
            };
        }
        Some(cur)
    }

    /// A cheap read-only view of this argument's value, used by the
    /// simulated kernel's branch predicates.
    pub fn view(&self) -> ArgView<'_> {
        match self {
            Arg::Int { value } => ArgView::Int(*value),
            Arg::Ptr { inner, .. } => ArgView::Ptr {
                is_null: inner.is_none(),
            },
            Arg::Data { bytes } => ArgView::Data(bytes),
            Arg::Group { inner } => ArgView::Group { len: inner.len() },
            Arg::Union { variant, .. } => ArgView::Union { variant: *variant },
            Arg::Res { source } => ArgView::Res(*source),
        }
    }

    /// The payload length used when finalizing `Len` fields: byte length
    /// for buffers, element count for groups, the pointee's length for
    /// pointers (NULL is 0), and the byte width heuristic (8) for scalars.
    pub fn payload_len(&self) -> u64 {
        match self {
            Arg::Int { .. } => 8,
            Arg::Ptr { inner, .. } => inner.as_ref().map_or(0, |a| a.payload_len()),
            Arg::Data { bytes } => bytes.len() as u64,
            Arg::Group { inner } => inner.len() as u64,
            Arg::Union { inner, .. } => inner.payload_len(),
            Arg::Res { .. } => 8,
        }
    }

    /// Visits every nested argument (including `self`), outermost first,
    /// with its path relative to `base`.
    pub fn visit<'a>(&'a self, base: &ArgPath, f: &mut impl FnMut(&ArgPath, &'a Arg)) {
        f(base, self);
        match self {
            Arg::Ptr {
                inner: Some(inner), ..
            } => inner.visit(&base.child(PathSegment::Deref), f),
            Arg::Group { inner } => {
                // NOTE: struct fields and array elements share Group; the
                // path segment kind is disambiguated by the description
                // walk in `enumerate`, so the generic visitor uses Field.
                for (i, a) in inner.iter().enumerate() {
                    a.visit(&base.child(PathSegment::Field(i as u16)), f);
                }
            }
            Arg::Union { variant, inner } => {
                inner.visit(&base.child(PathSegment::Variant(*variant)), f)
            }
            _ => {}
        }
    }

    /// Rewrites all `Res::Ref` indices via `map` (used when calls are
    /// inserted or removed). `map` returns the new index, or `None` if the
    /// referenced call disappeared, in which case the reference degrades
    /// to the given special value.
    pub fn remap_refs(&mut self, map: &impl Fn(usize) -> Option<usize>, fallback: u64) {
        match self {
            Arg::Res { source } => {
                if let ResSource::Ref(idx) = source {
                    *source = match map(*idx) {
                        Some(n) => ResSource::Ref(n),
                        None => ResSource::Special(fallback),
                    };
                }
            }
            Arg::Ptr {
                inner: Some(inner), ..
            } => inner.remap_refs(map, fallback),
            Arg::Group { inner } => {
                for a in inner {
                    a.remap_refs(map, fallback);
                }
            }
            Arg::Union { inner, .. } => inner.remap_refs(map, fallback),
            _ => {}
        }
    }

    /// Collects the call indices this argument references.
    pub fn collect_refs(&self, out: &mut Vec<usize>) {
        match self {
            Arg::Res {
                source: ResSource::Ref(idx),
            } => out.push(*idx),
            Arg::Ptr {
                inner: Some(inner), ..
            } => inner.collect_refs(out),
            Arg::Group { inner } => {
                for a in inner {
                    a.collect_refs(out);
                }
            }
            Arg::Union { inner, .. } => inner.collect_refs(out),
            _ => {}
        }
    }
}

/// Read-only projection of an [`Arg`] for predicate evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArgView<'a> {
    /// Scalar value.
    Int(u64),
    /// Pointer (only nullness is observable structurally).
    Ptr {
        /// Whether the pointer is NULL.
        is_null: bool,
    },
    /// Buffer contents.
    Data(&'a [u8]),
    /// Struct/array arity.
    Group {
        /// Number of fields or elements.
        len: usize,
    },
    /// Active union variant.
    Union {
        /// Description variant index.
        variant: u16,
    },
    /// Resource reference.
    Res(ResSource),
}

impl ArgView<'_> {
    /// The scalar value if this is an integer view.
    pub fn as_int(&self) -> Option<u64> {
        match self {
            ArgView::Int(v) => Some(*v),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Arg {
        Arg::ptr(
            0x2000_0000,
            Arg::Group {
                inner: vec![
                    Arg::int(7),
                    Arg::Data {
                        bytes: vec![1, 2, 3],
                    },
                    Arg::Union {
                        variant: 1,
                        inner: Box::new(Arg::int(42)),
                    },
                ],
            },
        )
    }

    #[test]
    fn descend_follows_structure() {
        let a = sample();
        let path = [
            PathSegment::Deref,
            PathSegment::Field(2),
            PathSegment::Variant(1),
        ];
        assert_eq!(a.descend(&path), Some(&Arg::int(42)));
        // Wrong union variant gates the descent.
        let miss = [
            PathSegment::Deref,
            PathSegment::Field(2),
            PathSegment::Variant(0),
        ];
        assert_eq!(a.descend(&miss), None);
    }

    #[test]
    fn descend_mut_edits_in_place() {
        let mut a = sample();
        let path = [PathSegment::Deref, PathSegment::Field(0)];
        *a.descend_mut(&path).unwrap() = Arg::int(99);
        assert_eq!(a.descend(&path), Some(&Arg::int(99)));
    }

    #[test]
    fn null_pointer_blocks_descend() {
        let a = Arg::null();
        assert_eq!(a.descend(&[PathSegment::Deref]), None);
        assert_eq!(a.view(), ArgView::Ptr { is_null: true });
    }

    #[test]
    fn payload_len_semantics() {
        assert_eq!(Arg::Data { bytes: vec![0; 5] }.payload_len(), 5);
        assert_eq!(
            Arg::Group {
                inner: vec![Arg::int(0), Arg::int(1)]
            }
            .payload_len(),
            2
        );
        assert_eq!(Arg::null().payload_len(), 0);
    }

    #[test]
    fn remap_refs_rewires_and_degrades() {
        let mut a = Arg::Group {
            inner: vec![
                Arg::Res {
                    source: ResSource::Ref(3),
                },
                Arg::Res {
                    source: ResSource::Ref(5),
                },
            ],
        };
        a.remap_refs(&|i| if i == 3 { Some(2) } else { None }, u64::MAX);
        let mut refs = Vec::new();
        a.collect_refs(&mut refs);
        assert_eq!(refs, vec![2]);
        match &a {
            Arg::Group { inner } => {
                assert_eq!(
                    inner[1],
                    Arg::Res {
                        source: ResSource::Special(u64::MAX)
                    }
                );
            }
            _ => unreachable!(),
        }
    }
}
