//! Umbrella crate for the Snowplow reproduction.
//!
//! Re-exports the public facade from [`snowplow_core`]; the workspace's
//! runnable examples (`examples/`) and cross-crate integration tests
//! (`tests/`) are hosted here.

pub use snowplow_core::*;
